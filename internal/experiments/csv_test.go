package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCSVTable(t *testing.T) {
	dir := t.TempDir()
	res := Result{
		ID: "figX",
		Tables: []Table{
			{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}},
			{Columns: []string{"c"}, Rows: [][]string{{"5"}}},
		},
		Series: []Series{{Name: "cdf all", X: []float64{1, 2}, Y: []float64{0.5, 1}}},
	}
	if err := WriteCSV(dir, res); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "figX.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "a" || rows[2][1] != "4" {
		t.Errorf("table csv = %v", rows)
	}

	if _, err := os.Stat(filepath.Join(dir, "figX-1.csv")); err != nil {
		t.Errorf("second table missing: %v", err)
	}

	sf, err := os.Open(filepath.Join(dir, "figX-series-cdf_all.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	srows, err := csv.NewReader(sf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != 3 || srows[0][0] != "x" || srows[1][0] != "1" {
		t.Errorf("series csv = %v", srows)
	}
}

func TestWriteAllCSV(t *testing.T) {
	dir := t.TempDir()
	ds := synthDataset()
	if err := WriteAllCSV(dir, []Result{Fig2(ds), Fig20(ds)}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2.csv", "fig20.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("%s missing", want)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a b/c:d"); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}
