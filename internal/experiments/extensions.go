package experiments

import (
	"fmt"
	"math"

	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpmodel"
	"repro/internal/tcpsim"
	"repro/internal/testbed"
)

// This file implements the paper's §7 future-work directions and two
// related-work comparisons as extension experiments:
//
//   - ExtAR        — "more complex predictors (such as ARIMA models)":
//     AR(p) via Yule-Walker vs the simple predictors.
//   - ExtHybrid    — "hybrid predictors, which rely on TCP models as well
//     as on recent history".
//   - ExtNWSProbes — NWS-style prediction of bulk throughput from
//     small-window probe transfers (related work §2, Network Weather
//     Service / Vazhkudai et al.), using the dataset's 20 KB companion
//     transfers as the probes.
//   - ExtShortTransfers — slow-start-aware FB prediction for short
//     transfers (§4.2.7 / Cardwell et al. / Arlitt et al.), evaluated on
//     fresh byte-limited transfers across a size sweep.
//   - ExtStationarity — run test / reverse-arrangement verdicts vs
//     prediction accuracy (§5.2's discussion of why generic stationarity
//     tests are not the right tool).

// ExtAR compares AR(p) predictors against the paper's simple ones on the
// per-trace RMSRE metric.
func ExtAR(ds *testbed.Dataset) Result {
	variants := []struct {
		name string
		mk   func() predict.HB
	}{
		{"10-MA", func() predict.HB { return predict.NewMA(10) }},
		{"0.8-HW-LSO", func() predict.HB {
			return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
		}},
		{"AR(1)", func() predict.HB { return predict.NewAR(1, 0) }},
		{"AR(3)", func() predict.HB { return predict.NewAR(3, 0) }},
		{"AR(3)-LSO", func() predict.HB {
			return predict.NewLSO(predict.NewAR(3, 0), predict.DefaultLSOConfig())
		}},
	}
	names := make([]string, len(variants))
	samples := make([][]float64, len(variants))
	for i, v := range variants {
		names[i] = v.name
		samples[i] = hbPerTraceRMSRE(ds, v.mk, false)
	}
	return Result{
		ID:    "ext-ar",
		Title: "Extension (paper §7): AR(p) predictors vs the simple linear predictors",
		Notes: []string{
			"the paper predicts (citing Vazhkudai et al.) that complex linear predictors bring little;",
			"AR should match, not beat, MA/HW-LSO on these series",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}

// ExtHybrid evaluates the hybrid FB+history predictor: per epoch it
// predicts with (a) pure FB, (b) the hybrid with its bias learned from the
// trace so far, and (c) HW-LSO, and reports per-trace RMSRE for all three.
func ExtHybrid(ds *testbed.Dataset) Result {
	var fbR, hyR, hbR []float64
	for _, tr := range ds.Traces {
		fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
		hy := predict.NewHybrid(predict.FBConfig{Model: predict.ModelPFTK}, 0.5)
		hb := predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
		var fbE, hyE, hbE []float64
		for _, rec := range tr.Records {
			in := predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
			fbE = append(fbE, relErr(fb.Predict(in), rec.Throughput))
			hyE = append(hyE, relErr(hy.Predict(in), rec.Throughput))
			hy.Observe(rec.Throughput)
			if p, ok := hb.Predict(); ok {
				hbE = append(hbE, relErr(p, rec.Throughput))
			}
			hb.Observe(rec.Throughput)
		}
		fbR = append(fbR, stats.RMSRE(fbE, errClamp))
		hyR = append(hyR, stats.RMSRE(hyE, errClamp))
		hbR = append(hbR, stats.RMSRE(hbE, errClamp))
	}
	better := 0
	for i := range fbR {
		if hyR[i] < fbR[i] {
			better++
		}
	}
	return Result{
		ID:    "ext-hybrid",
		Title: "Extension (paper §7): hybrid FB×history predictor",
		Notes: []string{
			"the hybrid learns FB's multiplicative bias per path from history",
			fmt.Sprintf("measured: hybrid beats pure FB on %d/%d traces", better, len(fbR)),
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles",
			[]string{"FB", "hybrid", "HW-LSO"}, [][]float64{fbR, hyR, hbR})},
	}
}

// ExtNWSProbes predicts each epoch's bulk (W=1MB) throughput from the
// history of window-limited (W=20KB) "probe" transfers, NWS-style:
// (a) raw — forecast of the probe series used directly, and (b) corrected —
// scaled by the observed bulk/probe ratio so far (Vazhkudai et al.'s
// regression idea in its simplest form).
func ExtNWSProbes(ds *testbed.Dataset) Result {
	var rawR, corrR, directR []float64
	for _, tr := range ds.Traces {
		if len(tr.Records) == 0 || tr.Records[0].SmallWindowBytes == 0 {
			continue
		}
		probeHW := predict.NewHoltWinters(0.8, 0.2)
		bulkHW := predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
		ratio := predict.NewEWMA(0.3) // bulk/probe correction
		var rawE, corrE, directE []float64
		for _, rec := range tr.Records {
			if probePred, ok := probeHW.Predict(); ok && probePred > 0 {
				rawE = append(rawE, relErr(probePred, rec.Throughput))
				if r, ok2 := ratio.Predict(); ok2 {
					corrE = append(corrE, relErr(probePred*r, rec.Throughput))
				}
			}
			if p, ok := bulkHW.Predict(); ok {
				directE = append(directE, relErr(p, rec.Throughput))
			}
			probeHW.Observe(rec.SmallThroughput)
			bulkHW.Observe(rec.Throughput)
			if rec.SmallThroughput > 0 {
				ratio.Observe(rec.Throughput / rec.SmallThroughput)
			}
		}
		rawR = append(rawR, stats.RMSRE(clampErrs(rawE), errClamp))
		corrR = append(corrR, stats.RMSRE(clampErrs(corrE), errClamp))
		directR = append(directR, stats.RMSRE(clampErrs(directE), errClamp))
	}
	return Result{
		ID:    "ext-nws",
		Title: "Extension (related work §2): NWS-style bulk prediction from small-window probes",
		Notes: []string{
			"raw small-probe forecasts systematically underestimate bulk throughput (Vazhkudai et al.);",
			"a learned bulk/probe ratio correction recovers most of the gap; direct bulk history is best",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles",
			[]string{"probe raw", "probe corrected", "bulk history"},
			[][]float64{rawR, corrR, directR})},
	}
}

// ExtShortTransfers evaluates the slow-start-aware FB model on a size
// sweep of fresh byte-limited transfers (16 KB – 4 MB) over a few
// simulated paths, against the naive bulk PFTK prediction that ignores
// slow start. Paper §4.2.7: below the E[d_ss] threshold the bulk formula
// is the wrong tool.
func ExtShortTransfers(seed int64) Result {
	sizes := []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	type pathCfg struct {
		name   string
		capBps float64
		rtt    float64
		loss   float64
	}
	paths := []pathCfg{
		{"10M-40ms-p.3%", 10e6, 0.04, 0.003},
		{"5M-100ms-p1%", 5e6, 0.1, 0.01},
		{"20M-20ms-p.1%", 20e6, 0.02, 0.001},
	}
	t := Table{
		Title:   "median |E| by transfer size: slow-start-aware model vs bulk PFTK",
		Columns: []string{"size", "short-model |E|", "bulk-PFTK |E|", "E[d_ss]/d"},
	}
	for _, size := range sizes {
		var shortEs, bulkEs, ssFracs []float64
		for pi, pc := range paths {
			for rep := 0; rep < 3; rep++ {
				eng := sim.NewEngine()
				rng := sim.NewRNG(seed + int64(pi*100+rep))
				path := netem.NewPath(eng, rng, netem.PathSpec{
					Name: pc.name,
					Forward: []netem.Hop{
						{CapacityBps: pc.capBps, PropDelay: pc.rtt / 2, BufferBytes: 1 << 20, LossProb: pc.loss},
					},
				})
				rep := iperf.RunBytes(eng, path, 1, size, 600, tcpsim.Config{DelayedAck: true})
				if rep.Duration <= 0 || rep.BytesAcked < size {
					continue
				}
				actual := rep.ThroughputBps / 8 // bytes/s

				d := (size + 1459) / 1460
				params := tcpmodel.ShortTransferParams{
					Params: tcpmodel.Params{
						MSS: 1460, RTT: pc.rtt, Loss: pc.loss, B: 2,
						RTO: math.Max(1, 2*pc.rtt), Wmax: float64(1<<20) / 1460,
					},
				}
				shortPred := tcpmodel.ShortTransferThroughput(params, d)
				bulkPred := tcpmodel.PFTK(params.Params)
				if math.IsInf(bulkPred, 1) {
					bulkPred = params.Wmax * 1460 / pc.rtt
				}
				shortEs = append(shortEs, math.Abs(stats.RelativeError(shortPred, actual)))
				bulkEs = append(bulkEs, math.Abs(stats.RelativeError(bulkPred, actual)))
				ssFracs = append(ssFracs, tcpmodel.SlowStartSegments(pc.loss, d)/float64(d))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKB", size>>10),
			fmt.Sprintf("%.2f", stats.Median(shortEs)),
			fmt.Sprintf("%.2f", stats.Median(bulkEs)),
			fmt.Sprintf("%.2f", stats.Median(ssFracs)),
		})
	}
	return Result{
		ID:    "ext-short-transfers",
		Title: "Extension (§4.2.7 / Cardwell et al.): slow-start-aware FB for short transfers",
		Notes: []string{
			"for small transfers the bulk formula overestimates badly (slow start dominates);",
			"the latency model closes the gap and converges to PFTK for large transfers",
		},
		Tables: []Table{t},
	}
}

// ExtStationarity classifies each trace with the run test and the
// reverse-arrangement test (§5.2's citations) and relates the verdicts to
// the HW-LSO prediction error.
func ExtStationarity(ds *testbed.Dataset) Result {
	var statR, nonstatR []float64
	trend := 0
	for _, tr := range ds.Traces {
		series := tr.Throughputs()
		if len(series) < 10 {
			continue
		}
		res := predict.Evaluate(
			predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig()), series)
		rmsre := stats.RMSRE(clampErrs(res.Errors), errClamp)
		if stats.StationaryByRunTest(series) {
			statR = append(statR, rmsre)
		} else {
			nonstatR = append(nonstatR, rmsre)
		}
		if stats.TrendByReverseArrangements(series) {
			trend++
		}
	}
	return Result{
		ID:    "ext-stationarity",
		Title: "Extension (§5.2): generic stationarity tests vs prediction accuracy",
		Notes: []string{
			fmt.Sprintf("run test: %d stationary, %d non-stationary traces; reverse-arrangement flags %d trending",
				len(statR), len(nonstatR), trend),
			"non-stationary traces predict worse on average, but the tests are too blunt to drive restarts (the paper's point)",
		},
		Tables: []Table{cdfTable("per-trace RMSRE (HW-LSO)",
			[]string{"stationary", "non-stationary"}, [][]float64{statR, nonstatR})},
	}
}

// Extensions returns all extension experiments that run on the primary
// dataset (ExtShortTransfers simulates its own transfers).
func Extensions(ds *testbed.Dataset) []Result {
	return []Result{
		ExtAR(ds), ExtHybrid(ds), ExtNWSProbes(ds), ExtStationarity(ds),
		ExtShortTransfers(12345), ExtZoo(ds),
	}
}
