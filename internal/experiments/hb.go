package experiments

import (
	"fmt"
	"math"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// hbPerTraceRMSRE evaluates a fresh predictor per trace and returns the
// per-trace RMSREs. When small is true the window-limited throughput
// series is used.
func hbPerTraceRMSRE(ds *testbed.Dataset, mk func() predict.HB, small bool) []float64 {
	var out []float64
	for _, tr := range ds.Traces {
		series := tr.Throughputs()
		if small {
			series = tr.SmallThroughputs()
		}
		if len(series) == 0 {
			continue
		}
		res := predict.Evaluate(mk(), series)
		out = append(out, stats.RMSRE(clampErrs(res.Errors), errClamp))
	}
	return out
}

func clampErrs(errs []float64) []float64 {
	out := make([]float64, len(errs))
	for i, e := range errs {
		switch {
		case e > errClamp:
			out[i] = errClamp
		case e < -errClamp:
			out[i] = -errClamp
		default:
			out[i] = e
		}
	}
	return out
}

// hbMakers returns the predictor constructors for a standard comparison
// set.
func hbMakers() (names []string, mks []func() predict.HB) {
	add := func(n string, mk func() predict.HB) {
		names = append(names, n)
		mks = append(mks, mk)
	}
	lso := predict.DefaultLSOConfig()
	add("1-MA", func() predict.HB { return predict.NewMA(1) })
	add("10-MA", func() predict.HB { return predict.NewMA(10) })
	add("10-MA-LSO", func() predict.HB { return predict.NewLSO(predict.NewMA(10), lso) })
	add("0.8-EWMA", func() predict.HB { return predict.NewEWMA(0.8) })
	add("0.8-HW", func() predict.HB { return predict.NewHoltWinters(0.8, 0.2) })
	add("0.8-HW-LSO", func() predict.HB { return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), lso) })
	return names, mks
}

// Fig15 — synthetic pathology traces (level shift; trend+shift+outliers;
// shift+outliers) and the RMSRE of the predictor family on each. Paper:
// LSO slashes the error on pathological traces and makes the predictor
// choice non-critical.
func Fig15() Result {
	rng := sim.NewRNG(20050817)
	traces := map[string][]float64{
		"(a) level shift":          synthLevelShift(rng.Fork()),
		"(b) trend+shift+outliers": synthTrendShiftOutliers(rng.Fork()),
		"(c) shift+outliers":       synthShiftOutliers(rng.Fork()),
	}
	names, mks := fig15Predictors()
	order := []string{"(a) level shift", "(b) trend+shift+outliers", "(c) shift+outliers"}
	t := Table{Title: "RMSRE per predictor per synthetic trace", Columns: append([]string{"predictor"}, order...)}
	for i, name := range names {
		row := []string{name}
		for _, tn := range order {
			res := predict.Evaluate(mks[i](), traces[tn])
			row = append(row, fmt.Sprintf("%.3f", stats.RMSRE(clampErrs(res.Errors), errClamp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return Result{
		ID:    "fig15",
		Title: "Example pathological traces and predictor errors (paper Fig. 15 d-f)",
		Notes: []string{
			"paper: LSO variants dominate on traces with shifts/outliers; without LSO the parameter choice matters",
		},
		Tables: []Table{t},
	}
}

func fig15Predictors() ([]string, []func() predict.HB) {
	var names []string
	var mks []func() predict.HB
	lso := predict.DefaultLSOConfig()
	for _, n := range []int{1, 5, 10, 20} {
		n := n
		names = append(names, fmt.Sprintf("%d-MA", n))
		mks = append(mks, func() predict.HB { return predict.NewMA(n) })
		names = append(names, fmt.Sprintf("%d-MA-LSO", n))
		mks = append(mks, func() predict.HB { return predict.NewLSO(predict.NewMA(n), lso) })
	}
	for _, a := range []float64{0.2, 0.5, 0.8} {
		a := a
		names = append(names, fmt.Sprintf("%.1f-EWMA", a))
		mks = append(mks, func() predict.HB { return predict.NewEWMA(a) })
		names = append(names, fmt.Sprintf("%.1f-HW", a))
		mks = append(mks, func() predict.HB { return predict.NewHoltWinters(a, 0.2) })
		names = append(names, fmt.Sprintf("%.1f-HW-LSO", a))
		mks = append(mks, func() predict.HB { return predict.NewLSO(predict.NewHoltWinters(a, 0.2), lso) })
	}
	return names, mks
}

// Synthetic trace generators for Fig 15. Units are Mbps.

func synthLevelShift(rng *sim.RNG) []float64 {
	var xs []float64
	for i := 0; i < 75; i++ {
		xs = append(xs, rng.Normal(6, 0.25))
	}
	for i := 0; i < 75; i++ {
		xs = append(xs, rng.Normal(2.5, 0.2))
	}
	return xs
}

func synthTrendShiftOutliers(rng *sim.RNG) []float64 {
	var xs []float64
	for i := 0; i < 60; i++ { // rising trend
		xs = append(xs, rng.Normal(3+0.04*float64(i), 0.2))
	}
	for i := 0; i < 90; i++ { // shifted level with sporadic outliers
		v := rng.Normal(8, 0.3)
		if rng.Bool(0.05) {
			v *= rng.Uniform(0.2, 0.4)
		}
		xs = append(xs, v)
	}
	return xs
}

func synthShiftOutliers(rng *sim.RNG) []float64 {
	var xs []float64
	for i := 0; i < 150; i++ {
		level := 5.0
		if i >= 70 {
			level = 9.0
		}
		v := rng.Normal(level, 0.3)
		if rng.Bool(0.06) {
			v *= rng.Uniform(0.15, 0.45)
		}
		xs = append(xs, v)
	}
	return xs
}

// Fig16 — CDF of per-trace RMSRE for MA predictors of several orders, with
// and without LSO. Paper: n barely matters for n<20 except 1-MA; LSO
// reduces RMSRE significantly for all.
func Fig16(ds *testbed.Dataset) Result {
	lso := predict.DefaultLSOConfig()
	variants := []struct {
		name string
		mk   func() predict.HB
	}{
		{"1-MA", func() predict.HB { return predict.NewMA(1) }},
		{"5-MA", func() predict.HB { return predict.NewMA(5) }},
		{"10-MA", func() predict.HB { return predict.NewMA(10) }},
		{"20-MA", func() predict.HB { return predict.NewMA(20) }},
		{"5-MA-LSO", func() predict.HB { return predict.NewLSO(predict.NewMA(5), lso) }},
		{"10-MA-LSO", func() predict.HB { return predict.NewLSO(predict.NewMA(10), lso) }},
		{"20-MA-LSO", func() predict.HB { return predict.NewLSO(predict.NewMA(20), lso) }},
	}
	names := make([]string, len(variants))
	samples := make([][]float64, len(variants))
	for i, v := range variants {
		names[i] = v.name
		samples[i] = hbPerTraceRMSRE(ds, v.mk, false)
	}
	return Result{
		ID:    "fig16",
		Title: "Moving Average prediction error (per-trace RMSRE)",
		Notes: []string{
			"paper: n-MA similar for n≤20 (1-MA worst); LSO significantly reduces RMSRE",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}

// Fig17 — same for Holt-Winters with α ∈ {0.2, 0.5, 0.8} ± LSO, plus EWMA
// for reference. Paper: α=0.8 near-optimal; HW-LSO best overall but only
// slightly ahead of MA-LSO.
func Fig17(ds *testbed.Dataset) Result {
	lso := predict.DefaultLSOConfig()
	variants := []struct {
		name string
		mk   func() predict.HB
	}{
		{"0.2-HW", func() predict.HB { return predict.NewHoltWinters(0.2, 0.2) }},
		{"0.5-HW", func() predict.HB { return predict.NewHoltWinters(0.5, 0.2) }},
		{"0.8-HW", func() predict.HB { return predict.NewHoltWinters(0.8, 0.2) }},
		{"0.8-EWMA", func() predict.HB { return predict.NewEWMA(0.8) }},
		{"0.2-HW-LSO", func() predict.HB { return predict.NewLSO(predict.NewHoltWinters(0.2, 0.2), lso) }},
		{"0.8-HW-LSO", func() predict.HB { return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), lso) }},
	}
	names := make([]string, len(variants))
	samples := make([][]float64, len(variants))
	for i, v := range variants {
		names[i] = v.name
		samples[i] = hbPerTraceRMSRE(ds, v.mk, false)
	}
	return Result{
		ID:    "fig17",
		Title: "Holt-Winters prediction error (per-trace RMSRE)",
		Notes: []string{
			"paper: α=0.8 close to optimal; EWMA ≈ HW; LSO significantly improves both",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}

// Fig18 — sensitivity of MA-5+LSO to the LSO parameters γ and ψ. Paper:
// the CDF of |E| barely moves across reasonable (γ, ψ).
func Fig18(ds *testbed.Dataset) Result {
	combos := []struct{ gamma, psi float64 }{
		{0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5}, {0.5, 0.6}, {0.3, 0.6}, {0.5, 0.4},
	}
	var names []string
	var samples [][]float64
	for _, c := range combos {
		cfg := predict.LSOConfig{Gamma: c.gamma, Psi: c.psi, MaxHistory: 32}
		var errs []float64
		for _, tr := range ds.Traces {
			res := predict.Evaluate(predict.NewLSO(predict.NewMA(5), cfg), tr.Throughputs())
			for _, e := range clampErrs(res.Errors) {
				errs = append(errs, math.Abs(e))
			}
		}
		names = append(names, fmt.Sprintf("γ=%.1f ψ=%.1f", c.gamma, c.psi))
		samples = append(samples, errs)
	}
	return Result{
		ID:     "fig18",
		Title:  "MA-5+LSO sensitivity to level-shift (γ) and outlier (ψ) thresholds — CDF of |E|",
		Notes:  []string{"paper: the LSO detection is not sensitive to γ and ψ"},
		Tables: []Table{cdfTable("|E| quantiles", names, samples)},
	}
}

// Fig20 — per-trace CoV of the throughput series versus the HW-LSO RMSRE.
// Paper: strong correlation (r = 0.91): the prediction error is
// approximately the CoV of the series.
func Fig20(ds *testbed.Dataset) Result {
	var covs, rmsres []float64
	for _, tr := range ds.Traces {
		series := tr.Throughputs()
		if len(series) < 4 {
			continue
		}
		p := predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
		res := predict.Evaluate(p, series)
		rmsres = append(rmsres, stats.RMSRE(clampErrs(res.Errors), errClamp))
		covs = append(covs, segmentedCoV(series))
	}
	r := stats.Pearson(covs, rmsres)
	t := Table{Title: fmt.Sprintf("CoV vs RMSRE (Pearson r = %.3f)", r),
		Columns: []string{"stat", "CoV", "RMSRE"}}
	for _, q := range []float64{10, 50, 90} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("P%02.0f", q),
			fmt.Sprintf("%.3f", stats.Percentile(covs, q)),
			fmt.Sprintf("%.3f", stats.Percentile(rmsres, q)),
		})
	}
	return Result{
		ID:    "fig20",
		Title: "Per-trace throughput CoV vs HW-LSO RMSRE",
		Notes: []string{
			"paper: correlation coefficient 0.91 — RMSRE ≈ CoV to first order",
			fmt.Sprintf("measured: Pearson r = %.3f over %d traces", r, len(covs)),
		},
		Tables: []Table{t},
		Series: []Series{{Name: "cov_vs_rmsre", X: covs, Y: rmsres}},
	}
}

// segmentedCoV computes the paper's stationarity-aware CoV: detect level
// shifts/outliers with the LSO heuristics, exclude outliers, and weight
// per-segment CoVs by length.
func segmentedCoV(series []float64) float64 {
	det := predict.NewLSO(predict.NewMA(1), predict.DefaultLSOConfig())
	var clean []float64
	var boundaries []int
	shifts := 0
	for _, x := range series {
		det.Observe(x)
		if det.Shifts > shifts {
			shifts = det.Shifts
			boundaries = append(boundaries, len(clean))
		}
		clean = append(clean, x)
	}
	// Remove obvious outliers relative to each segment's median.
	return stats.SegmentedCoV(clean, boundaries)
}

// Fig21 — the four path-predictability classes: per-trace RMSRE bars for
// representative predictors on each path, and a classification summary.
func Fig21(ds *testbed.Dataset) Result {
	names, mks := hbMakers()
	_ = names
	type pathAgg struct {
		perTrace [][]float64 // [predictor][trace]
	}
	paths := ds.PathNames()
	t := Table{
		Title:   "per-path mean and spread of per-trace RMSRE (HW-LSO)",
		Columns: []string{"path", "class", "mean RMSRE", "min", "max", "category"},
	}
	classCount := map[string]int{}
	for _, p := range paths {
		traces := ds.TracesForPath(p)
		agg := pathAgg{perTrace: make([][]float64, len(mks))}
		var class string
		for _, tr := range traces {
			class = tr.Class
			for i, mk := range mks {
				res := predict.Evaluate(mk(), tr.Throughputs())
				agg.perTrace[i] = append(agg.perTrace[i], stats.RMSRE(clampErrs(res.Errors), errClamp))
			}
		}
		hwlso := agg.perTrace[len(mks)-1] // HW-LSO is last in hbMakers
		mean := stats.Mean(hwlso)
		lo, hi := minmax(hwlso)
		cat := classifyPath(mean, hi-lo)
		classCount[cat]++
		t.Rows = append(t.Rows, []string{
			p, class,
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", lo),
			fmt.Sprintf("%.3f", hi),
			cat,
		})
	}
	notes := []string{
		"paper: paths split into (a) predictable, (b) small stable errors, (c) small but varying errors, (d) unpredictable",
	}
	for _, c := range []string{"a:predictable", "b:stable-errors", "c:varying-errors", "d:unpredictable"} {
		notes = append(notes, fmt.Sprintf("measured: class %s → %d paths", c, classCount[c]))
	}
	return Result{
		ID:     "fig21",
		Title:  "Variations in path predictability (HW-LSO per-trace RMSRE)",
		Notes:  notes,
		Tables: []Table{t},
	}
}

// classifyPath maps mean RMSRE and spread to the paper's four Fig. 21
// categories.
func classifyPath(mean, spread float64) string {
	switch {
	case mean < 0.15 && spread < 0.2:
		return "a:predictable"
	case mean < 0.5 && spread < 0.3:
		return "b:stable-errors"
	case mean < 0.5:
		return "c:varying-errors"
	default:
		return "d:unpredictable"
	}
}

func minmax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

// Fig22 — HB prediction error for window-limited (small W) versus
// congestion-limited (large W) transfers, per path. Paper: window-limited
// flows have lower RMSRE, though the gap narrows when the
// congestion-limited RMSRE is already small.
func Fig22(ds *testbed.Dataset) Result {
	mk := func() predict.HB {
		return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
	}
	t := Table{
		Title:   "per-path mean per-trace RMSRE (HW-LSO): W=1MB vs W=20KB",
		Columns: []string{"path", "RMSRE large-W", "RMSRE small-W"},
	}
	better, total := 0, 0
	for _, p := range ds.PathNames() {
		var largeR, smallR []float64
		for _, tr := range ds.TracesForPath(p) {
			if len(tr.Records) == 0 || tr.Records[0].SmallWindowBytes == 0 {
				continue
			}
			resL := predict.Evaluate(mk(), tr.Throughputs())
			resS := predict.Evaluate(mk(), tr.SmallThroughputs())
			largeR = append(largeR, stats.RMSRE(clampErrs(resL.Errors), errClamp))
			smallR = append(smallR, stats.RMSRE(clampErrs(resS.Errors), errClamp))
		}
		if len(largeR) == 0 {
			continue
		}
		total++
		l, s := stats.Mean(largeR), stats.Mean(smallR)
		if s < l {
			better++
		}
		t.Rows = append(t.Rows, []string{p, fmt.Sprintf("%.3f", l), fmt.Sprintf("%.3f", s)})
	}
	return Result{
		ID:    "fig22",
		Title: "HB predictability: window-limited vs congestion-limited flows",
		Notes: []string{
			"paper: window-limited flows have lower RMSRE (difference small when RMSRE already ≈0.1)",
			fmt.Sprintf("measured: small-W RMSRE lower on %d/%d paths", better, total),
		},
		Tables: []Table{t},
	}
}

// Fig23 — HW-LSO per-trace RMSRE after down-sampling the throughput series
// to multiples of the base transfer interval (the paper's 3 → 6/24/45 min).
// Paper: accuracy degrades gracefully; at 45 min, 65% of traces still have
// RMSRE < 0.4.
func Fig23(ds *testbed.Dataset, baseIntervalMin float64) Result {
	factors := []int{1, 2, 8, 15}
	mk := func() predict.HB {
		return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
	}
	var names []string
	var samples [][]float64
	for _, k := range factors {
		var rmsres []float64
		for _, tr := range ds.Traces {
			series := tr.Throughputs()
			// Average the RMSRE over the k possible sampling offsets so
			// short traces still contribute a stable figure.
			var acc []float64
			for off := 0; off < k; off++ {
				down := stats.Downsample(series, k, off)
				if len(down) < 3 {
					continue
				}
				res := predict.Evaluate(mk(), down)
				acc = append(acc, stats.RMSRE(clampErrs(res.Errors), errClamp))
			}
			if len(acc) > 0 {
				rmsres = append(rmsres, stats.Mean(acc))
			}
		}
		names = append(names, fmt.Sprintf("%.0fmin", baseIntervalMin*float64(k)))
		samples = append(samples, rmsres)
	}
	return Result{
		ID:    "fig23",
		Title: "HW-LSO per-trace RMSRE vs TCP transfer interval (down-sampled)",
		Notes: []string{
			"paper: errors grow with the interval but stay reasonable; at 45 min 65% of traces have RMSRE<0.4",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}
