package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Fig2 — CDF of the FB relative error E for all predictions, lossy-path
// predictions (PFTK branch) and lossless-path predictions (avail-bw
// branch). Paper headline: ~40% of epochs overestimate by >2× (E ≥ 1),
// ~10% by >10×, while underestimation is rare and mild; lossless
// predictions are markedly better.
func Fig2(ds *testbed.Dataset) Result {
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	var all, lossy, lossless []float64
	for _, e := range evals {
		all = append(all, e.Err)
		if e.Lossy {
			lossy = append(lossy, e.Err)
		} else {
			lossless = append(lossless, e.Err)
		}
	}
	return Result{
		ID:    "fig2",
		Title: "CDF of FB prediction error E: all / lossy / lossless",
		Notes: []string{
			"paper: ~40% of predictions overestimate by ≥2x (E≥1); ~10% by ≥10x; underestimation below 10%",
		},
		Tables: []Table{cdfTable("E quantiles", []string{"all", "lossy", "lossless"},
			[][]float64{all, lossy, lossless})},
		Series: []Series{cdfSeries("all", all), cdfSeries("lossy", lossy), cdfSeries("lossless", lossless)},
	}
}

// Fig3 — CDFs of the absolute RTT and loss-rate increase during the target
// flow: T̃-T̂ (ms) and p̃-p̂.
func Fig3(ds *testbed.Dataset) Result {
	var dRTT, dLoss []float64
	for _, rec := range ds.AllRecords() {
		dRTT = append(dRTT, (rec.DurRTT-rec.PreRTT)*1e3)
		dLoss = append(dLoss, rec.DurLoss-rec.PreLoss)
	}
	return Result{
		ID:    "fig3",
		Title: "CDF of absolute RTT (ms) and loss-rate increase during the target flow",
		Notes: []string{
			"paper: ~50% of epochs show little RTT increase; ~40% gain 5-60 ms; loss rises 0.1-2% almost always",
		},
		Tables: []Table{cdfTable("increase quantiles", []string{"RTT inc (ms)", "loss inc"},
			[][]float64{dRTT, dLoss})},
		Series: []Series{cdfSeries("rtt_increase_ms", dRTT), cdfSeries("loss_increase", dLoss)},
	}
}

// Fig4 — CDF of the relative RTT increase (T̃-T̂)/T̂ during the target flow.
func Fig4(ds *testbed.Dataset) Result {
	var rel []float64
	for _, rec := range ds.AllRecords() {
		if rec.PreRTT > 0 {
			rel = append(rel, (rec.DurRTT-rec.PreRTT)/rec.PreRTT)
		}
	}
	return Result{
		ID:     "fig4",
		Title:  "CDF of relative RTT increase during target flow",
		Notes:  []string{"paper: ~20% of epochs have relative RTT increase > 0.5"},
		Tables: []Table{cdfTable("quantiles", []string{"(T̃-T̂)/T̂"}, [][]float64{rel})},
		Series: []Series{cdfSeries("rel_rtt_increase", rel)},
	}
}

// Fig5 — CDF of the relative loss-rate increase (p̃-p̂)/p̂, for epochs that
// were lossy before the transfer (p̂ > 0).
func Fig5(ds *testbed.Dataset) Result {
	var rel []float64
	for _, rec := range ds.AllRecords() {
		if rec.PreLoss > 0 {
			rel = append(rel, (rec.DurLoss-rec.PreLoss)/rec.PreLoss)
		}
	}
	return Result{
		ID:     "fig5",
		Title:  "CDF of relative loss-rate increase during target flow (lossy epochs)",
		Notes:  []string{"paper: >70% of lossy epochs have relative loss increase > 1.25 (p̃ > 2.25·p̂)"},
		Tables: []Table{cdfTable("quantiles", []string{"(p̃-p̂)/p̂"}, [][]float64{rel})},
		Series: []Series{cdfSeries("rel_loss_increase", rel)},
	}
}

// Fig6 — FB error on lossy epochs using in-flow probing estimates (T̃, p̃)
// versus the standard pre-flow estimates (T̂, p̂). Paper: in-flow inputs
// roughly symmetrize and shrink the error, but large errors remain —
// evidence of the TCP-vs-periodic-probing sampling gap.
func Fig6(ds *testbed.Dataset) Result {
	pre := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	dur := EvalFB(ds, predict.ModelPFTK, SourceDuring, 0)
	var preE, durE []float64
	for i := range pre {
		if pre[i].Lossy {
			preE = append(preE, pre[i].Err)
		}
		if dur[i].Lossy {
			durE = append(durE, dur[i].Err)
		}
	}
	return Result{
		ID:    "fig6",
		Title: "FB error using (T̃,p̃) during flow vs (T̂,p̂) before flow — lossy epochs",
		Notes: []string{
			"paper: with in-flow inputs ~80% of errors fall in (-3,3) and the CDF becomes symmetric; big errors persist",
		},
		Tables: []Table{cdfTable("E quantiles", []string{"during (T̃,p̃)", "before (T̂,p̂)"},
			[][]float64{durE, preE})},
		Series: []Series{cdfSeries("during", durE), cdfSeries("before", preE)},
	}
}

// Fig7 — per-path FB error: median and 10/90th percentiles of E.
func Fig7(ds *testbed.Dataset) Result {
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	byPath := make(map[string][]float64)
	var order []string
	for _, e := range evals {
		if _, ok := byPath[e.Rec.Path]; !ok {
			order = append(order, e.Rec.Path)
		}
		byPath[e.Rec.Path] = append(byPath[e.Rec.Path], e.Err)
	}
	t := Table{Title: "per-path E percentiles", Columns: []string{"path", "P10", "median", "P90"}}
	for _, p := range order {
		es := byPath[p]
		t.Rows = append(t.Rows, []string{
			p,
			fmt.Sprintf("%.2f", stats.Percentile(es, 10)),
			fmt.Sprintf("%.2f", stats.Percentile(es, 50)),
			fmt.Sprintf("%.2f", stats.Percentile(es, 90)),
		})
	}
	return Result{
		ID:    "fig7",
		Title: "Variation of FB prediction error across paths",
		Notes: []string{
			"paper: most paths mainly overestimate; ~10/35 paths have much larger errors and wider ranges (up to E=10+)",
		},
		Tables: []Table{t},
	}
}

// scatterResult summarizes a scatter plot with a correlation figure and a
// binned table.
func scatterResult(id, title, xname string, xs, ys []float64, notes []string, logBins []float64, binLabel func(lo, hi float64) string) Result {
	corr := stats.Pearson(xs, ys)
	t := Table{
		Title:   fmt.Sprintf("%s vs E (Pearson r = %.3f)", xname, corr),
		Columns: []string{binLabel(0, 0), "n", "median E", "P90 E", "frac E>10"},
	}
	for i := 0; i+1 < len(logBins); i++ {
		lo, hi := logBins[i], logBins[i+1]
		var es []float64
		for j, x := range xs {
			if x >= lo && x < hi {
				es = append(es, ys[j])
			}
		}
		if len(es) == 0 {
			continue
		}
		over := 0
		for _, e := range es {
			if e > 10 {
				over++
			}
		}
		t.Rows = append(t.Rows, []string{
			binLabel(lo, hi),
			fmt.Sprintf("%d", len(es)),
			fmt.Sprintf("%.2f", stats.Median(es)),
			fmt.Sprintf("%.2f", stats.Percentile(es, 90)),
			fmt.Sprintf("%.3f", safeFrac(over, len(es))),
		})
	}
	return Result{
		ID:     id,
		Title:  title,
		Notes:  notes,
		Tables: []Table{t},
		Series: []Series{{Name: "scatter", X: xs, Y: ys}},
	}
}

// Fig8 — actual throughput R versus FB error. Paper: the huge
// overestimates concentrate on transfers with very small throughput
// (42% of samples with R ≤ 0.5 Mbps have E > 10 vs 0.2% above).
func Fig8(ds *testbed.Dataset) Result {
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	var xs, ys []float64
	for _, e := range evals {
		xs = append(xs, e.Rec.Throughput/1e6)
		ys = append(ys, e.Err)
	}
	res := scatterResult("fig8", "Actual throughput vs FB prediction error",
		"R (Mbps)", xs, ys,
		[]string{"paper: large E>10 errors occur almost exclusively at R ≤ 0.5 Mbps"},
		[]float64{0, 0.1, 0.25, 0.5, 1, 2, 5, 10, 50, math.Inf(1)},
		func(lo, hi float64) string {
			if lo == 0 && hi == 0 {
				return "R bin (Mbps)"
			}
			return fmt.Sprintf("[%.2f,%.2f)", lo, hi)
		})
	// The paper's specific split at 0.5 Mbps.
	var lowBig, low, hiBig, hi int
	for i, x := range xs {
		if x <= 0.5 {
			low++
			if ys[i] > 10 {
				lowBig++
			}
		} else {
			hi++
			if ys[i] > 10 {
				hiBig++
			}
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"measured: frac E>10 at R≤0.5Mbps = %.3f (n=%d); at R>0.5Mbps = %.3f (n=%d)",
		safeFrac(lowBig, low), low, safeFrac(hiBig, hi), hi))
	return res
}

// Fig9 — a-priori loss rate p̂ versus FB error (lossy epochs only).
// Paper: no visible correlation.
func Fig9(ds *testbed.Dataset) Result {
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	var xs, ys []float64
	for _, e := range evals {
		if e.Lossy {
			xs = append(xs, e.Rec.PreLoss)
			ys = append(ys, e.Err)
		}
	}
	return scatterResult("fig9", "A-priori loss rate vs FB prediction error (lossy epochs)",
		"p̂", xs, ys,
		[]string{"paper: prediction error is not correlated with the path's prior loss rate"},
		[]float64{0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 1},
		func(lo, hi float64) string {
			if lo == 0 && hi == 0 {
				return "p̂ bin"
			}
			return fmt.Sprintf("[%.3f,%.3f)", lo, hi)
		})
}

// Fig10 — a-priori RTT T̂ versus FB error. Paper: no positive correlation.
func Fig10(ds *testbed.Dataset) Result {
	evals := EvalFB(ds, predict.ModelPFTK, SourcePre, 0)
	var xs, ys []float64
	for _, e := range evals {
		xs = append(xs, e.Rec.PreRTT*1e3)
		ys = append(ys, e.Err)
	}
	return scatterResult("fig10", "A-priori RTT vs FB prediction error",
		"T̂ (ms)", xs, ys,
		[]string{"paper: no positive correlation between RTT and prediction error"},
		[]float64{0, 25, 50, 75, 100, 150, 200, 300, math.Inf(1)},
		func(lo, hi float64) string {
			if lo == 0 && hi == 0 {
				return "T̂ bin (ms)"
			}
			return fmt.Sprintf("[%.0f,%.0f)", lo, hi)
		})
}

// Fig11 — FB error for transfer prefixes of different lengths, using the
// second dataset's checkpointed transfers. Paper: no noticeable
// correlation between transfer duration and error.
func Fig11(ds2 *testbed.Dataset, checkpointDurations []float64, fullDuration float64) Result {
	fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
	names := make([]string, 0, len(checkpointDurations)+1)
	samples := make([][]float64, len(checkpointDurations)+1)
	for _, d := range checkpointDurations {
		names = append(names, fmt.Sprintf("%.0fs", d))
	}
	names = append(names, fmt.Sprintf("%.0fs (full)", fullDuration))
	for _, rec := range ds2.AllRecords() {
		pred := fb.Predict(fbInputs(rec, SourcePre))
		for i := range checkpointDurations {
			if i < len(rec.Checkpoints) && rec.Checkpoints[i] > 0 {
				samples[i] = append(samples[i], relErr(pred, rec.Checkpoints[i]))
			}
		}
		samples[len(checkpointDurations)] = append(samples[len(checkpointDurations)],
			relErr(pred, rec.Throughput))
	}
	return Result{
		ID:     "fig11",
		Title:  "FB prediction error for transfer prefixes of different durations (dataset 2)",
		Notes:  []string{"paper: no noticeable correlation between prediction error and transfer duration"},
		Tables: []Table{cdfTable("E quantiles by prefix", names, samples)},
	}
}

// Fig12 — per-path RMSRE of FB prediction for window-limited (small W)
// versus congestion-limited (large W) transfers, on paths where the small
// window actually limits the transfer. Paper: window-limited transfers are
// far more predictable (RMSRE < 1 on 14 of 19 paths).
func Fig12(ds *testbed.Dataset) Result {
	type agg struct {
		largeE, smallE []float64
		limited, total int
	}
	byPath := make(map[string]*agg)
	var order []string
	smallWindow := 0
	for _, tr := range ds.Traces {
		for _, rec := range tr.Records {
			if rec.SmallWindowBytes == 0 {
				continue
			}
			smallWindow = rec.SmallWindowBytes
			a := byPath[rec.Path]
			if a == nil {
				a = &agg{}
				byPath[rec.Path] = a
				order = append(order, rec.Path)
			}
			fbL := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, MaxWindowBytes: 1 << 20})
			fbS := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, MaxWindowBytes: rec.SmallWindowBytes})
			in := fbInputs(rec, SourcePre)
			a.largeE = append(a.largeE, relErr(fbL.Predict(in), rec.Throughput))
			a.smallE = append(a.smallE, relErr(fbS.Predict(in), rec.SmallThroughput))
			a.total++
			if rec.SmallWindowLimited {
				a.limited++
			}
		}
	}
	t := Table{
		Title:   fmt.Sprintf("per-path RMSRE, W=1MB vs W=%dKB (paths where the small window limits)", smallWindow/1024),
		Columns: []string{"path", "limited frac", "RMSRE large-W", "RMSRE small-W", "ratio"},
	}
	better := 0
	under1 := 0
	kept := 0
	for _, p := range order {
		a := byPath[p]
		if safeFrac(a.limited, a.total) < 0.5 {
			continue // not a window-limited path for this W
		}
		kept++
		rl := stats.RMSRE(a.largeE, errClamp)
		rs := stats.RMSRE(a.smallE, errClamp)
		if rs < rl {
			better++
		}
		if rs < 1 {
			under1++
		}
		ratio := math.Inf(1)
		if rs > 0 {
			ratio = rl / rs
		}
		t.Rows = append(t.Rows, []string{
			p,
			fmt.Sprintf("%.2f", safeFrac(a.limited, a.total)),
			fmt.Sprintf("%.3f", rl),
			fmt.Sprintf("%.3f", rs),
			fmt.Sprintf("%.1f", ratio),
		})
	}
	return Result{
		ID:    "fig12",
		Title: "FB predictability: window-limited vs congestion-limited transfers",
		Notes: []string{
			"paper: window-limited RMSRE lower on every path, often by a large factor; RMSRE<1 on 14/19 paths",
			fmt.Sprintf("measured: small-W RMSRE lower on %d/%d window-limited paths; RMSRE<1 on %d", better, kept, under1),
		},
		Tables: []Table{t},
	}
}

// Fig13 — FB error CDF with the revised PFTK formula versus the original.
// Paper: the difference is negligible compared to the overall FB error.
func Fig13(ds *testbed.Dataset) Result {
	orig := Errors(EvalFB(ds, predict.ModelPFTK, SourcePre, 0))
	revised := Errors(EvalFB(ds, predict.ModelRevisedPFTK, SourcePre, 0))
	return Result{
		ID:    "fig13",
		Title: "FB error with the revised PFTK model (Chen et al.) vs original PFTK",
		Notes: []string{"paper: difference between the two formulas is negligible relative to FB error"},
		Tables: []Table{cdfTable("E quantiles", []string{"PFTK", "revised PFTK"},
			[][]float64{orig, revised})},
		Series: []Series{cdfSeries("pftk", orig), cdfSeries("revised", revised)},
	}
}

// Fig14 — FB error CDF using MA(10)-smoothed RTT/loss inputs versus the
// latest-sample inputs. Paper: nearly identical — input noise is not the
// bottleneck.
func Fig14(ds *testbed.Dataset) Result {
	latest := Errors(EvalFB(ds, predict.ModelPFTK, SourcePre, 0))
	smoothed := Errors(EvalFBSmoothed(ds, predict.ModelPFTK, 10, 0))
	return Result{
		ID:    "fig14",
		Title: "FB error with MA(10)-smoothed T̂,p̂ vs latest-sample inputs",
		Notes: []string{"paper: the two predictors are very similar; estimation noise is a minor error source"},
		Tables: []Table{cdfTable("E quantiles", []string{"latest", "smoothed"},
			[][]float64{latest, smoothed})},
		Series: []Series{cdfSeries("latest", latest), cdfSeries("smoothed", smoothed)},
	}
}

// Fig19 — CDF of per-trace RMSRE for the FB predictor, to compare with the
// HB predictors of Figs 16/17. Paper: FB median per-trace RMSRE ≈ 2 and
// the 90th percentile ≈ 20, versus RMSRE < 0.4 for ~90% of traces with HB.
func Fig19(ds *testbed.Dataset) Result {
	fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
	var rmsres []float64
	for _, tr := range ds.Traces {
		var errs []float64
		for _, rec := range tr.Records {
			errs = append(errs, relErr(fb.Predict(fbInputs(rec, SourcePre)), rec.Throughput))
		}
		rmsres = append(rmsres, stats.RMSRE(errs, errClamp))
	}
	hb := hbPerTraceRMSRE(ds, func() predict.HB {
		return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
	}, false)
	sort.Float64s(rmsres)
	return Result{
		ID:    "fig19",
		Title: "CDF of per-trace RMSRE: FB vs HB (HW-LSO)",
		Notes: []string{
			"paper: HB gives RMSRE<0.4 for ~90% of traces; FB median RMSRE ≈ 2, P90 ≈ 20",
		},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", []string{"FB (PFTK)", "HB (HW-LSO)"},
			[][]float64{rmsres, hb})},
		Series: []Series{cdfSeries("fb_rmsre", rmsres), cdfSeries("hb_rmsre", hb)},
	}
}
