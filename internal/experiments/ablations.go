package experiments

import (
	"fmt"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// AblationCongestionEvents — §3.3 / Goyal et al.: feed PFTK the flow's own
// RTT with (a) the raw packet loss rate p and (b) the congestion-event
// rate p′. The paper argues p′ is the quantity PFTK actually wants; this
// ablation quantifies the gap on our testbed ("posthumous" prediction, as
// in the original PFTK validation).
func AblationCongestionEvents(ds *testbed.Dataset) Result {
	withP := Errors(EvalFB(ds, predict.ModelPFTK, SourceFlow, 0))
	withCER := Errors(EvalFB(ds, predict.ModelPFTK, SourceFlowCER, 0))
	pre := Errors(EvalFB(ds, predict.ModelPFTK, SourcePre, 0))
	return Result{
		ID:    "ablation-p-vs-pprime",
		Title: "PFTK input ablation: packet loss rate p vs congestion-event rate p′ (flow-measured)",
		Notes: []string{
			"posthumous prediction in the spirit of the original PFTK validation;",
			"p′ should beat p because PFTK models loss events, not individual drops (§3.3)",
		},
		Tables: []Table{cdfTable("E quantiles", []string{"flow p", "flow p′", "a-priori p̂"},
			[][]float64{withP, withCER, pre})},
	}
}

// AblationAvailBw — Eq. 3's lossless branch: predict lossless epochs with
// min(W/T̂, Â) versus the naive W/T̂. Quantifies how much the avail-bw
// measurement buys.
func AblationAvailBw(ds *testbed.Dataset) Result {
	fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
	var withA, withoutA []float64
	for _, rec := range ds.AllRecords() {
		if rec.PreLoss > 0 {
			continue
		}
		in := predict.FBInputs{RTT: rec.PreRTT, LossRate: 0, AvailBw: rec.AvailBw}
		withA = append(withA, relErr(fb.Predict(in), rec.Throughput))
		in.AvailBw = 0 // disables the avail-bw cap
		withoutA = append(withoutA, relErr(fb.Predict(in), rec.Throughput))
	}
	return Result{
		ID:    "ablation-availbw",
		Title: "Lossless-branch ablation: min(W/T̂, Â) vs naive W/T̂",
		Notes: []string{"the avail-bw cap should remove the worst overestimates on lossless epochs"},
		Tables: []Table{cdfTable("E quantiles (lossless epochs)", []string{"with Â", "W/T̂ only"},
			[][]float64{withA, withoutA})},
	}
}

// AblationLSOComponents — split the LSO heuristic: outlier removal only,
// level-shift restart only, both, neither (per-trace RMSRE of HW).
func AblationLSOComponents(ds *testbed.Dataset) Result {
	mkHW := func() predict.HB { return predict.NewHoltWinters(0.8, 0.2) }
	variants := []struct {
		name string
		mk   func() predict.HB
	}{
		{"HW (none)", mkHW},
		{"HW outliers-only", func() predict.HB {
			// Disable shift detection by making γ unreachable.
			return predict.NewLSO(mkHW(), predict.LSOConfig{Gamma: 1e12, Psi: 0.4, MaxHistory: 32})
		}},
		{"HW shifts-only", func() predict.HB {
			return predict.NewLSO(mkHW(), predict.LSOConfig{Gamma: 0.3, Psi: 1e12, MaxHistory: 32})
		}},
		{"HW-LSO (both)", func() predict.HB {
			return predict.NewLSO(mkHW(), predict.DefaultLSOConfig())
		}},
	}
	names := make([]string, len(variants))
	samples := make([][]float64, len(variants))
	for i, v := range variants {
		names[i] = v.name
		samples[i] = hbPerTraceRMSRE(ds, v.mk, false)
	}
	return Result{
		ID:     "ablation-lso-components",
		Title:  "LSO component ablation: outlier removal vs level-shift restart (per-trace RMSRE, HW)",
		Notes:  []string{"both heuristics contribute; shifts matter most on non-stationary paths"},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}

// AblationDelayedACK — the b parameter of the formulas: b=2 (delayed ACKs,
// matching the simulated receiver) versus b=1.
func AblationDelayedACK(ds *testbed.Dataset) Result {
	var b2, b1 []float64
	fb2 := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, B: 2})
	fb1 := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, B: 1})
	for _, rec := range ds.AllRecords() {
		if rec.PreLoss == 0 {
			continue // b only enters the PFTK branch
		}
		in := predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
		b2 = append(b2, relErr(fb2.Predict(in), rec.Throughput))
		b1 = append(b1, relErr(fb1.Predict(in), rec.Throughput))
	}
	return Result{
		ID:     "ablation-delayed-ack",
		Title:  "Formula b parameter: b=2 (delayed ACKs) vs b=1 (lossy epochs)",
		Notes:  []string{"the simulated receiver delays ACKs, so b=2 matches the data generation"},
		Tables: []Table{cdfTable("E quantiles", []string{"b=2", "b=1"}, [][]float64{b2, b1})},
	}
}

// AblationHistoryLength — how much history HB needs: MA with n ∈
// {1,2,5,10,20,32} (per-trace RMSRE). Complements the paper's finding that
// 10-20 samples suffice.
func AblationHistoryLength(ds *testbed.Dataset) Result {
	var names []string
	var samples [][]float64
	for _, n := range []int{1, 2, 5, 10, 20, 32} {
		n := n
		names = append(names, fmt.Sprintf("%d-MA-LSO", n))
		samples = append(samples, hbPerTraceRMSRE(ds, func() predict.HB {
			return predict.NewLSO(predict.NewMA(n), predict.DefaultLSOConfig())
		}, false))
	}
	return Result{
		ID:     "ablation-history-length",
		Title:  "History length: per-trace RMSRE of n-MA-LSO",
		Notes:  []string{"paper: ~10 samples suffice; very long histories do not help (cf. Zhang et al.)"},
		Tables: []Table{cdfTable("per-trace RMSRE quantiles", names, samples)},
	}
}

// SummaryTable — the paper's §4.3/§6.2 headline numbers in one table, to
// be copied into EXPERIMENTS.md.
func SummaryTable(ds *testbed.Dataset) Result {
	fbErrs := Errors(EvalFB(ds, predict.ModelPFTK, SourcePre, 0))
	over := 0
	for _, e := range fbErrs {
		if e > 0 {
			over++
		}
	}
	fbTraceRMSRE := hbFBTraceRMSRE(ds)
	hwlso := hbPerTraceRMSRE(ds, func() predict.HB {
		return predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig())
	}, false)
	hbUnder04 := 0
	for _, r := range hwlso {
		if r < 0.4 {
			hbUnder04++
		}
	}
	t := Table{Title: "headline numbers", Columns: []string{"metric", "paper", "measured"}}
	t.Rows = append(t.Rows,
		[]string{"FB frac |E|>1", "~0.50", fmt.Sprintf("%.3f", stats.FractionAbove(fbErrs, 1))},
		[]string{"FB frac |E|>9", "~0.10", fmt.Sprintf("%.3f", stats.FractionAbove(fbErrs, 9))},
		[]string{"FB frac overestimates", "~0.80", fmt.Sprintf("%.3f", safeFrac(over, len(fbErrs)))},
		[]string{"FB median per-trace RMSRE", "~2", fmt.Sprintf("%.3f", stats.Median(fbTraceRMSRE))},
		[]string{"FB P90 per-trace RMSRE", "~20", fmt.Sprintf("%.3f", stats.Percentile(fbTraceRMSRE, 90))},
		[]string{"HB(HW-LSO) frac traces RMSRE<0.4", "~0.90", fmt.Sprintf("%.3f", safeFrac(hbUnder04, len(hwlso)))},
		[]string{"HB(HW-LSO) median per-trace RMSRE", "<0.4", fmt.Sprintf("%.3f", stats.Median(hwlso))},
	)
	return Result{
		ID:     "summary",
		Title:  "Headline comparison with the paper",
		Tables: []Table{t},
	}
}

func hbFBTraceRMSRE(ds *testbed.Dataset) []float64 {
	fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
	var out []float64
	for _, tr := range ds.Traces {
		var errs []float64
		for _, rec := range tr.Records {
			errs = append(errs, relErr(fb.Predict(predict.FBInputs{
				RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw,
			}), rec.Throughput))
		}
		out = append(out, stats.RMSRE(errs, errClamp))
	}
	return out
}

// All returns every experiment that runs on the primary dataset, in paper
// order (Fig 11 needs the second dataset and is excluded here).
func All(ds *testbed.Dataset, baseIntervalMin float64) []Result {
	return []Result{
		Fig2(ds), Fig3(ds), Fig4(ds), Fig5(ds), Fig6(ds), Fig7(ds), Fig8(ds),
		Fig9(ds), Fig10(ds), Fig12(ds), Fig13(ds), Fig14(ds), Fig15(),
		Fig16(ds), Fig17(ds), Fig18(ds), Fig19(ds), Fig20(ds), Fig21(ds),
		Fig22(ds), Fig23(ds, baseIntervalMin),
		AblationCongestionEvents(ds), AblationAvailBw(ds),
		AblationLSOComponents(ds), AblationDelayedACK(ds),
		AblationHistoryLength(ds), SummaryTable(ds),
	}
}
