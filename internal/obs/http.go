package obs

import (
	"net/http"
	"net/http/pprof"
)

// Endpoint paths served by Handler. IsObsPath recognizes them so a host
// server can route observability traffic around its own middleware
// (load shedding must never shed a scrape).
const (
	PathMetrics   = "/metrics"
	PathTrace     = "/debug/trace"
	PathTraceTree = "/debug/trace.txt"
	PathPprof     = "/debug/pprof/"
)

// IsObsPath reports whether an HTTP path belongs to the observability
// endpoints.
func IsObsPath(path string) bool {
	if path == PathMetrics || path == PathTrace || path == PathTraceTree {
		return true
	}
	return len(path) >= len(PathPprof) && path[:len(PathPprof)] == PathPprof
}

// Handler serves the observability endpoints:
//
//	GET /metrics          Prometheus text exposition of the registry
//	GET /debug/trace      retained spans as Chrome trace_event JSON
//	GET /debug/trace.txt  retained spans as a plain-text tree
//	GET /debug/pprof/...  the standard runtime profiles (heap, profile,
//	                      goroutine, block, mutex, trace, ...)
//
// pprof handlers are mounted explicitly, not via the net/http/pprof
// side-effect registration, so nothing leaks into http.DefaultServeMux
// and several instrumented servers can coexist in one process.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathMetrics, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.M().WritePrometheus(w)
	})
	mux.HandleFunc("GET "+PathTrace, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.T().WriteChromeTrace(w)
	})
	mux.HandleFunc("GET "+PathTraceTree, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		o.T().WriteTree(w)
	})
	mux.HandleFunc(PathPprof, pprof.Index)
	mux.HandleFunc(PathPprof+"cmdline", pprof.Cmdline)
	mux.HandleFunc(PathPprof+"profile", pprof.Profile)
	mux.HandleFunc(PathPprof+"symbol", pprof.Symbol)
	mux.HandleFunc(PathPprof+"trace", pprof.Trace)
	return mux
}
