package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metrics and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration takes a lock and may
// allocate; the record paths (Counter.Add, Gauge.Set, Histogram.Observe)
// are lock-free atomics and perform no heap allocation.
//
// Metric names follow the Prometheus conventions: snake_case, a
// subsystem prefix (sim_, campaign_, predsvc_), unit suffixes (_seconds,
// _bytes) and _total for counters. A name may carry a fixed label set
// inline — `predsvc_requests_total{endpoint="observe"}` — and metrics
// sharing a family (the part before '{') share one HELP/TYPE header.
//
// All methods are nil-receiver-safe: registering on a nil *Registry
// returns a detached, fully functional metric that simply is never
// exported, so instrumented code does not need "is telemetry on?"
// branches.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family emission order = first registration order
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []metric
}

// metric is anything that can render its sample lines.
type metric interface {
	fullName() string // family name + optional {labels}
	writeSamples(w io.Writer, familyName string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// splitName separates `family{labels}` into family and the label block
// (empty when the name carries no labels).
func splitName(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// register adds m under its family, creating the family on first use,
// and returns the metric now registered under name. Registering a name
// that already exists with the same type returns the existing metric —
// so subsystems wired repeatedly against one registry (two campaigns in
// one repro run, say) share counters instead of fighting over names.
// Registering one family under two types panics: that is a wiring bug
// better caught at startup than rendered as an invalid exposition.
func (r *Registry) register(name, help, typ string, m metric) metric {
	if r == nil {
		return m
	}
	famName, _ := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[famName]
	if !ok {
		f = &family{name: famName, help: help, typ: typ}
		r.families[famName] = f
		r.order = append(r.order, famName)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", famName, f.typ, typ))
	}
	for _, existing := range f.metrics {
		if existing.fullName() == name {
			return existing
		}
	}
	f.metrics = append(f.metrics, m)
	return m
}

// Counter is a monotonically increasing uint64. The zero value is usable.
type Counter struct {
	v    atomic.Uint64
	name string
}

// Counter registers (or, on a nil registry, detaches) a counter.
// Re-registering an existing counter name returns the shared instance.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, "counter", &Counter{name: name})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a func-backed metric", name))
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) fullName() string { return c.name }

func (c *Counter) writeSamples(w io.Writer, _ string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
	return err
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters (e.g. the predsvc
// Metrics struct) that should not be double-counted.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", &funcMetric{name: name, fn: func() float64 { return float64(fn()) }})
}

// Gauge is a float64 that can go up and down. The zero value is usable.
type Gauge struct {
	bits atomic.Uint64
	name string
}

// Gauge registers (or detaches) a gauge. Re-registering an existing
// gauge name returns the shared instance.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, "gauge", &Gauge{name: name})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a func-backed metric", name))
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomic read-modify-write loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) fullName() string { return g.name }

func (g *Gauge) writeSamples(w io.Writer, _ string) error {
	return writeSample(w, g.name, g.Value())
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", &funcMetric{name: name, fn: fn})
}

type funcMetric struct {
	name string
	fn   func() float64
}

func (m *funcMetric) fullName() string { return m.name }

func (m *funcMetric) writeSamples(w io.Writer, _ string) error {
	return writeSample(w, m.name, m.fn())
}

// Histogram is a fixed-bucket histogram. Observe is lock-free and
// allocation-free: a linear scan over the (small, immutable) bound slice
// and two atomic adds. Bounds are upper bounds in ascending order; the
// +Inf bucket is implicit.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last = +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the running sum
	name    string
}

// Histogram registers (or detaches) a histogram with the given upper
// bounds (must be ascending and non-empty).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	m := r.register(name, help, "histogram", &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
		name:   name,
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a func-backed metric", name))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) fullName() string { return h.name }

func (h *Histogram) writeSamples(w io.Writer, familyName string) error {
	var counts []uint64
	for i := range h.counts {
		counts = append(counts, h.counts[i].Load())
	}
	return writeHistogram(w, familyName, h.name, HistogramState{
		UpperBounds: h.bounds,
		Counts:      counts,
		Sum:         math.Float64frombits(h.sumBits.Load()),
	})
}

// HistogramState is an externally maintained histogram handed to
// HistogramFunc at scrape time. Counts are per-bucket (not cumulative)
// and must have len(UpperBounds)+1 entries, the last being the +Inf
// bucket. Sum may be an estimate (e.g. from bucket midpoints) when the
// source does not track an exact running sum.
type HistogramState struct {
	UpperBounds []float64
	Counts      []uint64
	Sum         float64
}

// HistogramFunc registers a histogram whose state is read from fn at
// scrape time — the bridge for the prediction service's existing atomic
// latency histograms.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramState) {
	r.register(name, help, "histogram", &funcHistogram{name: name, fn: fn})
}

type funcHistogram struct {
	name string
	fn   func() HistogramState
}

func (m *funcHistogram) fullName() string { return m.name }

func (m *funcHistogram) writeSamples(w io.Writer, familyName string) error {
	return writeHistogram(w, familyName, m.name, m.fn())
}

// WritePrometheus renders every registered metric in the text exposition
// format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Snapshot the family list so sample rendering (which may call user
	// GaugeFunc callbacks) runs outside the registry lock.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range f.metrics {
			if err := m.writeSamples(w, f.name); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name string, v float64) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	return err
}

// withLabel splices `k="v"` into a possibly-labelled metric name:
// f{a="b"} + le=5 → f{a="b",le="5"}.
func withLabel(name, key, val string) string {
	fam, labels := splitName(name)
	if labels == "" {
		return fam + `{` + key + `="` + val + `"}`
	}
	return fam + labels[:len(labels)-1] + `,` + key + `="` + val + `"}`
}

// writeHistogram renders the cumulative _bucket series plus _sum/_count.
// The bucket/sum/count suffixes attach to the family name, with the
// metric's own labels preserved.
func writeHistogram(w io.Writer, familyName, name string, st HistogramState) error {
	if len(st.Counts) != len(st.UpperBounds)+1 {
		return fmt.Errorf("obs: histogram %s: %d counts for %d bounds", name, len(st.Counts), len(st.UpperBounds))
	}
	_, labels := splitName(name)
	var cum uint64
	for i, b := range st.UpperBounds {
		cum += st.Counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(familyName+"_bucket"+labels, "le", formatValue(b)), cum); err != nil {
			return err
		}
	}
	cum += st.Counts[len(st.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(familyName+"_bucket"+labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if err := writeSample(w, familyName+"_sum"+labels, st.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", familyName+"_count"+labels, cum)
	return err
}
