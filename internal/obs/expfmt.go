package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks that data is a well-formed Prometheus text
// exposition (format 0.0.4): every line is a HELP/TYPE comment or a
// sample; metric and label names use the legal character set; sample
// values parse as floats; a family's TYPE is declared at most once and
// before its samples; histogram families expose _bucket/_sum/_count with
// non-decreasing cumulative buckets ending in le="+Inf".
//
// It exists for the end-to-end tests — a scrape that Prometheus itself
// would reject should fail CI, not a production deployment.
func ValidateExposition(data []byte) error {
	types := map[string]string{} // family → declared type
	sampled := map[string]bool{} // family → samples seen
	lastBucket := map[string]struct {
		cum uint64
		le  float64
		inf bool
	}{}
	seen := map[string]bool{} // exact series (name+labels) already emitted

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		series := name + labels
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %q", lineNo, series)
		}
		seen[series] = true

		fam := histogramFamily(name, types)
		sampled[fam] = true

		if strings.HasSuffix(name, "_bucket") && types[fam] == "histogram" {
			le, ok := labelValue(labels, "le")
			if !ok {
				return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, series)
			}
			cum := uint64(value)
			st := lastBucket[fam+labelsWithout(labels, "le")]
			if st.inf {
				return fmt.Errorf("line %d: bucket after le=\"+Inf\" in %q", lineNo, fam)
			}
			var bound float64
			if le == "+Inf" {
				st.inf = true
			} else {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
				if st.cum > 0 || st.le != 0 {
					if bound <= st.le {
						return fmt.Errorf("line %d: non-ascending le in %q (%v after %v)", lineNo, fam, bound, st.le)
					}
				}
			}
			if cum < st.cum {
				return fmt.Errorf("line %d: non-cumulative bucket counts in %q (%d after %d)", lineNo, fam, cum, st.cum)
			}
			st.cum, st.le = cum, bound
			lastBucket[fam+labelsWithout(labels, "le")] = st
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range lastBucket {
		if !st.inf {
			return fmt.Errorf("histogram series %q has no le=\"+Inf\" bucket", key)
		}
	}
	return nil
}

// histogramFamily strips the _bucket/_sum/_count suffix when the base
// name was declared as a histogram, so suffixed samples attach to their
// family's TYPE.
func histogramFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits `name{labels} value [timestamp]`, validating each
// part. labels is returned with its braces ("" when absent).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[i : j+1]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = strings.TrimPrefix(rest[j+1:], " ")
	} else {
		fs := strings.SplitN(rest, " ", 2)
		if len(fs) != 2 {
			return "", "", 0, fmt.Errorf("sample without value: %q", line)
		}
		name, rest = fs[0], fs[1]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", "", 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// validateLabels checks a `{k="v",...}` block.
func validateLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return nil
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", block)
		}
		if !validLabelName(inner[:eq]) {
			return fmt.Errorf("invalid label name %q", inner[:eq])
		}
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", block)
		}
		// Scan the quoted value honoring \" escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", block)
		}
		inner = rest[i+1:]
		inner = strings.TrimPrefix(inner, ",")
	}
	return nil
}

// labelValue extracts one label's (unescaped) value from a `{...}` block.
func labelValue(block, key string) (string, bool) {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	for _, kv := range splitLabels(inner) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		if kv[:eq] == key {
			return strings.Trim(kv[eq+1:], `"`), true
		}
	}
	return "", false
}

// labelsWithout returns the label block with one key removed — used to
// group a histogram's buckets across their le values.
func labelsWithout(block, key string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var keep []string
	for _, kv := range splitLabels(inner) {
		if eq := strings.IndexByte(kv, '='); eq >= 0 && kv[:eq] == key {
			continue
		}
		keep = append(keep, kv)
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(inner string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		out = append(out, inner[start:])
	}
	return out
}
