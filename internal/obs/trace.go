package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity is the ring size NewTracer(0) uses.
const DefaultSpanCapacity = 8192

// Tracer records spans — named, parent-linked intervals of monotonic
// time — into a fixed-capacity ring of completed spans. It answers
// "where did this epoch's/request's time go" without unbounded memory:
// when the ring wraps, the oldest spans fall off and Dropped counts them.
//
// Starting and ending spans is goroutine-safe (the ring append takes a
// mutex); an individual *Span must stay on the goroutine that started
// it, like a local variable. All methods accept nil receivers — a nil
// *Tracer hands out nil *Spans whose methods are no-ops — so
// instrumentation seams cost one branch when tracing is off.
//
// Timestamps come from time.Since on a fixed anchor, i.e. the runtime's
// monotonic clock: spans order and measure correctly across wall-clock
// steps (NTP, suspend).
type Tracer struct {
	anchor time.Time // monotonic origin; all span times are offsets from it
	nextID atomic.Uint64

	mu      sync.Mutex
	ring    []SpanRecord
	next    int
	wrapped bool
	dropped uint64
	active  int64 // started but not yet ended
}

// SpanRecord is one completed span as retained by the ring.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Root   uint64 // ID of the span's root ancestor (its own ID for roots)
	Name   string
	Start  time.Duration // offset from the tracer anchor
	End    time.Duration
	Count  int64 // optional payload (events processed, bytes, ...)
}

// Span is a started, not-yet-ended span. The zero/nil Span is inert.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	root   uint64
	name   string
	start  time.Duration
	count  int64
}

// NewTracer returns a tracer retaining up to capacity completed spans
// (0 = DefaultSpanCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{anchor: time.Now(), ring: make([]SpanRecord, capacity)}
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	t.mu.Lock()
	t.active++
	t.mu.Unlock()
	return &Span{tr: t, id: id, root: id, name: name, start: time.Since(t.anchor)}
}

// Child opens a span parented under s. Child of a nil span is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	id := t.nextID.Add(1)
	t.mu.Lock()
	t.active++
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: s.id, root: s.root, name: name, start: time.Since(t.anchor)}
}

// AddCount accumulates an auxiliary count on the span (simulation events
// processed, requests served, ...), exported with the span record.
func (s *Span) AddCount(delta int64) {
	if s == nil {
		return
	}
	s.count += delta
}

// End completes the span, committing it to the tracer's ring. Ending a
// nil span is a no-op; ending twice commits two records (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Root: s.root, Name: s.name,
		Start: s.start, End: time.Since(t.anchor), Count: s.count,
	}
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.active--
	t.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first, plus how many older
// spans the ring has dropped.
func (t *Tracer) Snapshot() (spans []SpanRecord, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	} else {
		spans = append(spans, t.ring[:t.next]...)
	}
	return spans, t.dropped
}

// Active returns the number of started, not-yet-ended spans.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// WriteChromeTrace renders the retained spans as a Chrome trace_event
// JSON array of complete ("ph":"X") events, loadable in chrome://tracing
// or https://ui.perfetto.dev. Each root span and its descendants share a
// tid, so concurrent traces (campaign workers, HTTP requests) land in
// separate lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, _ := t.Snapshot()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, sp := range spans {
		sep := ","
		if i == len(spans)-1 {
			sep = ""
		}
		// Durations in microseconds, the trace_event unit.
		_, err := fmt.Fprintf(w,
			"  {\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"id\":%d,\"parent\":%d,\"count\":%d}}%s\n",
			strconv.Quote(sp.Name), sp.Root,
			float64(sp.Start)/1e3, float64(sp.End-sp.Start)/1e3,
			sp.ID, sp.Parent, sp.Count, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteTree renders the retained spans as an indented plain-text tree,
// one root per block, children ordered by start time. Spans whose parent
// fell off the ring are promoted to roots.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans, dropped := t.Snapshot()
	byID := make(map[uint64]int, len(spans))
	for i, sp := range spans {
		byID[sp.ID] = i
	}
	children := make(map[uint64][]int)
	var roots []int
	for i, sp := range spans {
		if _, ok := byID[sp.Parent]; sp.Parent != 0 && ok {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool { return spans[idx[a]].Start < spans[idx[b]].Start })
	}
	byStart(roots)
	for _, idx := range children {
		byStart(idx)
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d older spans dropped by the ring)\n", dropped); err != nil {
			return err
		}
	}
	var walk func(i, depth int) error
	walk = func(i, depth int) error {
		sp := spans[i]
		line := fmt.Sprintf("%*s%s  %s", 2*depth, "", sp.Name, (sp.End - sp.Start).Round(time.Microsecond))
		if sp.Count != 0 {
			line += fmt.Sprintf("  [count %d]", sp.Count)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range children[sp.ID] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
