// Package obs is the unified observability layer: a lightweight span
// tracer, a Prometheus-text-exposition metrics registry, and the HTTP
// endpoints (/metrics, /debug/pprof, /debug/trace) that expose both from
// any process in the repository — the prediction daemon, the batch
// collectors, or a test.
//
// The package has three design rules, in priority order:
//
//  1. Zero dependencies. Only the standard library; the repository's
//     lower layers (sim, netem, predict) may import obs without pulling
//     anything else in.
//
//  2. Free when off. Every instrumentation seam accepts a nil *Obs,
//     *Tracer or *Registry and degrades to (at most) a nil check, so
//     telemetry can stay compiled into the hot paths that PR 4 made
//     allocation-free without costing them anything when disabled.
//
//  3. Allocation-free when on (metrics). Counter.Add, Gauge.Set and
//     Histogram.Observe perform no heap allocation — they are plain
//     atomics — so a scrape-heavy deployment never sees telemetry in an
//     allocation profile. TestMetricsAllocFree pins this down. (Spans DO
//     allocate: they are coarse-grained — epochs, HTTP requests, engine
//     run segments — never per-event.)
//
// See DESIGN.md §11 for the span taxonomy and metric naming conventions.
package obs

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// Obs bundles one tracer and one metrics registry — the unit of
// observability a subsystem is wired with. The nil *Obs is fully usable:
// T() and M() return nil, which every method in this package accepts.
type Obs struct {
	tracer  *Tracer
	metrics *Registry
}

// New returns an Obs with a fresh registry and a tracer retaining up to
// spanCapacity completed spans (0 = DefaultSpanCapacity).
func New(spanCapacity int) *Obs {
	return &Obs{tracer: NewTracer(spanCapacity), metrics: NewRegistry()}
}

// T returns the tracer, or nil on a nil Obs.
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// M returns the metrics registry, or nil on a nil Obs.
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Serve runs the observability HTTP endpoints on addr until ctx is
// cancelled. It is the backing of the batch tools' -obs-addr flag; the
// daemon mounts Handler on its own server instead.
func (o *Obs) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: o.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// WriteFiles dumps the current telemetry into dir as offline artifacts:
// trace.json (Chrome trace_event format, load in chrome://tracing or
// Perfetto), trace.txt (plain-text span tree) and metrics.prom
// (Prometheus text exposition). CI uploads these from batch runs.
func (o *Obs) WriteFiles(dir string) error {
	if o == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("trace.json", func(f *os.File) error { return o.T().WriteChromeTrace(f) }); err != nil {
		return err
	}
	if err := write("trace.txt", func(f *os.File) error { return o.T().WriteTree(f) }); err != nil {
		return err
	}
	return write("metrics.prom", func(f *os.File) error { return o.M().WritePrometheus(f) })
}
