package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	o := New(64)
	o.M().Counter("test_total", "a counter").Add(5)
	sp := o.T().Start("work")
	sp.Child("phase").End()
	sp.End()

	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get(PathMetrics)
	if !strings.Contains(metrics, "test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if err := ValidateExposition([]byte(metrics)); err != nil {
		t.Errorf("/metrics invalid exposition: %v", err)
	}

	trace, _ := get(PathTrace)
	if !strings.Contains(trace, `"name":"work"`) {
		t.Errorf("/debug/trace missing span:\n%s", trace)
	}
	tree, _ := get(PathTraceTree)
	if !strings.Contains(tree, "work") || !strings.Contains(tree, "  phase") {
		t.Errorf("/debug/trace.txt tree:\n%s", tree)
	}

	// pprof index and one profile endpoint answer.
	idx, _ := get(PathPprof)
	if !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index:\n%.200s", idx)
	}
	get(PathPprof + "goroutine")
}

func TestIsObsPath(t *testing.T) {
	for _, p := range []string{PathMetrics, PathTrace, PathTraceTree, PathPprof, PathPprof + "heap"} {
		if !IsObsPath(p) {
			t.Errorf("IsObsPath(%q) = false", p)
		}
	}
	for _, p := range []string{"/", "/v1/predict", "/debug/vars", "/metricsx"} {
		if IsObsPath(p) {
			t.Errorf("IsObsPath(%q) = true", p)
		}
	}
}

func TestWriteFiles(t *testing.T) {
	o := New(64)
	o.M().Counter("c_total", "").Inc()
	o.T().Start("run").End()

	dir := t.TempDir()
	if err := o.WriteFiles(filepath.Join(dir, "obs")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trace.json", "trace.txt", "metrics.prom"} {
		data, err := os.ReadFile(filepath.Join(dir, "obs", name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}

	// Nil Obs writes nothing and does not error.
	var nilObs *Obs
	if err := nilObs.WriteFiles(filepath.Join(dir, "nil")); err != nil {
		t.Errorf("nil WriteFiles: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "nil")); !os.IsNotExist(err) {
		t.Error("nil Obs created the dump directory")
	}
}
