package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.AddCount(3) // no-ops all the way down
	child := sp.Child("y")
	child.End()
	sp.End()
	if spans, dropped := tr.Snapshot(); spans != nil || dropped != 0 {
		t.Errorf("nil tracer snapshot = %v, %d", spans, dropped)
	}
	if tr.Active() != 0 {
		t.Error("nil tracer has active spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
	if err := tr.WriteTree(&buf); err != nil {
		t.Errorf("nil WriteTree: %v", err)
	}
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("epoch")
	ping := root.Child("ping")
	ping.AddCount(60)
	ping.End()
	transfer := root.Child("transfer")
	transfer.End()
	root.End()

	spans, dropped := tr.Snapshot()
	if dropped != 0 || len(spans) != 3 {
		t.Fatalf("got %d spans, %d dropped", len(spans), dropped)
	}
	// Children end before the root, so: ping, transfer, epoch.
	if spans[0].Name != "ping" || spans[1].Name != "transfer" || spans[2].Name != "epoch" {
		t.Fatalf("span order: %q %q %q", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	rootRec := spans[2]
	for _, sp := range spans[:2] {
		if sp.Parent != rootRec.ID || sp.Root != rootRec.ID {
			t.Errorf("%s: parent %d root %d, want both %d", sp.Name, sp.Parent, sp.Root, rootRec.ID)
		}
		if sp.Start < rootRec.Start || sp.End > rootRec.End {
			t.Errorf("%s: [%v,%v] outside root [%v,%v]", sp.Name, sp.Start, sp.End, rootRec.Start, rootRec.End)
		}
	}
	if spans[0].Count != 60 {
		t.Errorf("ping count = %d, want 60", spans[0].Count)
	}
	if tr.Active() != 0 {
		t.Errorf("active = %d after all spans ended", tr.Active())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	spans, dropped := tr.Snapshot()
	if len(spans) != 4 {
		t.Errorf("retained %d spans, want 4", len(spans))
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	// Oldest-first: IDs strictly ascending.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Errorf("snapshot not oldest-first: %d after %d", spans[i].ID, spans[i-1].ID)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start("worker")
				sp.Child("phase").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	spans, dropped := tr.Snapshot()
	if len(spans) != 800 || dropped != 0 {
		t.Errorf("got %d spans, %d dropped; want 800, 0", len(spans), dropped)
	}
	seen := make(map[uint64]bool)
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestWriteChromeTraceIsJSON(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start(`epoch "quoted"`)
	root.Child("ping").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("event phase %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event ts missing: %v", ev)
		}
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("trace path#0")
	ep := root.Child("epoch")
	ping := ep.Child("ping")
	ping.AddCount(42)
	ping.End()
	ep.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "trace path#0") {
		t.Errorf("root line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  epoch") {
		t.Errorf("child not indented: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    ping") || !strings.Contains(lines[2], "[count 42]") {
		t.Errorf("grandchild line: %q", lines[2])
	}
}
