package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestMetricsAllocFree is the acceptance gate for the record paths: a
// counter add, a gauge set/add and a histogram observe must not allocate,
// so telemetry compiled into the PR-4 hot paths cannot reintroduce the
// allocations those paths were stripped of.
func TestMetricsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(42.5) }},
		{"Gauge.Add", func() { g.Add(-1.5) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestDetachedMetricsOnNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Add(7)
	if c.Value() != 7 {
		t.Errorf("detached counter = %d, want 7", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(1.5)
	g.Add(1)
	if g.Value() != 2.5 {
		t.Errorf("detached gauge = %v, want 2.5", g.Value())
	}
	h := r.Histogram("x_seconds", "", []float64{1})
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Errorf("detached histogram count = %d, want 1", h.Count())
	}
	r.GaugeFunc("y", "", func() float64 { return 0 })
	r.CounterFunc("y_total", "", func() uint64 { return 0 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{endpoint="observe"}`, "requests served").Add(10)
	r.Counter(`req_total{endpoint="predict"}`, "requests served").Add(4)
	r.Gauge("paths", "registered paths").Set(3)
	r.GaugeFunc("uptime_seconds", "uptime", func() float64 { return 12.25 })
	h := r.Histogram(`lat_seconds{endpoint="observe"}`, "latency", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	r.HistogramFunc("ext_seconds", "bridged", func() HistogramState {
		return HistogramState{UpperBounds: []float64{1, 2}, Counts: []uint64{1, 2, 3}, Sum: 10}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP req_total requests served\n",
		"# TYPE req_total counter\n",
		`req_total{endpoint="observe"} 10` + "\n",
		`req_total{endpoint="predict"} 4` + "\n",
		"# TYPE paths gauge\n",
		"paths 3\n",
		"uptime_seconds 12.25\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{endpoint="observe",le="0.001"} 1` + "\n",
		`lat_seconds_bucket{endpoint="observe",le="0.1"} 2` + "\n",
		`lat_seconds_bucket{endpoint="observe",le="+Inf"} 3` + "\n",
		`lat_seconds_count{endpoint="observe"} 3` + "\n",
		`ext_seconds_bucket{le="+Inf"} 6` + "\n",
		"ext_seconds_sum 10\n",
		"ext_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// One HELP/TYPE per family, even with two labelled children.
	if n := strings.Count(out, "# TYPE req_total"); n != 1 {
		t.Errorf("req_total TYPE emitted %d times, want 1", n)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("own exposition fails validation: %v\n---\n%s", err, out)
	}
}

func TestExpositionSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("inf", "", func() float64 { return math.Inf(1) })
	r.GaugeFunc("nan", "", func() float64 { return math.NaN() })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inf +Inf\n") || !strings.Contains(buf.String(), "nan NaN\n") {
		t.Errorf("special values rendered wrong:\n%s", buf.String())
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("special values rejected: %v", err)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("a_total", "")
	mustPanic("type clash", func() { r.Gauge("a_total", "") })
	r.GaugeFunc("g", "", func() float64 { return 0 })
	mustPanic("func/direct clash", func() { r.Gauge("g", "") })
	mustPanic("empty buckets", func() { r.Histogram("h", "", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("h2", "", []float64{2, 1}) })
}

// TestRegistrySharedOnReRegister pins the idempotent-wiring contract:
// registering the same name and type twice yields one shared metric and
// one exposition series.
func TestRegistrySharedOnReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "")
	b := r.Counter("shared_total", "")
	if a != b {
		t.Error("re-registered counter is a different instance")
	}
	a.Add(2)
	b.Add(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "shared_total 5"); got != 1 {
		t.Errorf("shared counter series:\n%s", buf.String())
	}
	h1 := r.Histogram("shared_seconds", "", []float64{1})
	h2 := r.Histogram("shared_seconds", "", []float64{1})
	if h1 != h2 {
		t.Error("re-registered histogram is a different instance")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []struct {
		name, in string
	}{
		{"garbage line", "!!!\n"},
		{"bad name", "9metric 1\n"},
		{"bad value", "m xyz\n"},
		{"bad label name", `m{9x="v"} 1` + "\n"},
		{"unterminated labels", `m{x="v 1` + "\n"},
		{"duplicate series", "m 1\nm 2\n"},
		{"duplicate TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n"},
		{"unknown TYPE", "# TYPE m zigzag\nm 1\n"},
		{"type after samples", "m_total 1\n# TYPE m_total counter\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n"},
		{"missing +Inf", "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n"},
	}
	for _, tc := range bad {
		if err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	if err := ValidateExposition([]byte("")); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}
