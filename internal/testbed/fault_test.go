package testbed

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// setEpochHook installs a pre-epoch test hook and restores the previous
// one on cleanup. Collect runs traces concurrently, so hooks must be
// goroutine-safe.
func setEpochHook(t *testing.T, hook func(job campaign.Job, epoch int)) {
	t.Helper()
	prev := testHookPreEpoch
	testHookPreEpoch = hook
	t.Cleanup(func() { testHookPreEpoch = prev })
}

// TestPanicFailsOnlyThatTrace injects a persistent panic into one trace's
// engine and checks the rest of the campaign survives with the fault
// reported as a per-trace error carrying path/trace/seed.
func TestPanicFailsOnlyThatTrace(t *testing.T) {
	cfg := TinyConfig(11)
	cfg.Retries = -1 // isolate the fault path; retries are tested below
	paths := Catalog(cfg.defaults().Catalog)
	victim := paths[1].Name

	setEpochHook(t, func(job campaign.Job, epoch int) {
		if job.Path == victim && epoch == 2 {
			panic("injected engine fault")
		}
	})

	ds, err := CollectContext(context.Background(), cfg)
	if err == nil {
		t.Fatal("faulted campaign reported no error")
	}
	var je *campaign.JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %T does not wrap *campaign.JobError: %v", err, err)
	}
	if je.Job.Path != victim || je.Job.Seed == 0 {
		t.Errorf("JobError identity = %s seed %d, want path %s with a derived seed", je.Job, je.Job.Seed, victim)
	}
	var pe *campaign.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not wrap *campaign.PanicError: %v", err)
	}
	if len(ds.Traces) != len(paths)-1 {
		t.Fatalf("dataset has %d traces, want %d (all but the faulted one)", len(ds.Traces), len(paths)-1)
	}
	for _, tr := range ds.Traces {
		if tr.Path == victim {
			t.Errorf("faulted trace %s present in dataset", victim)
		}
		if len(tr.Records) != cfg.EpochsPerTrace {
			t.Errorf("surviving trace %s has %d records, want %d", tr.Path, len(tr.Records), cfg.EpochsPerTrace)
		}
	}
}

// TestPanicRetryReplaysSameTrace makes one trace panic on its first
// attempt only; the retry must reuse the seed and reproduce exactly the
// trace an unfaulted campaign collects.
func TestPanicRetryReplaysSameTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(13)
	want := Collect(cfg) // no hook: the reference campaign

	var mu sync.Mutex
	tripped := map[string]bool{}
	paths := Catalog(cfg.defaults().Catalog)
	victim := paths[0].Name
	setEpochHook(t, func(job campaign.Job, epoch int) {
		if job.Path != victim || epoch != 1 {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if !tripped[job.Path] {
			tripped[job.Path] = true
			panic("transient fault")
		}
	})

	got, err := CollectContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("campaign with transient fault failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("retried campaign differs from the unfaulted one (seed not replayed?)")
	}
}

// TestCancelMidTraceReturnsPartialDataset cancels the campaign from an
// epoch callback: in-flight traces abort at the next epoch boundary and
// only traces completed before the cancellation survive.
func TestCancelMidTraceReturnsPartialDataset(t *testing.T) {
	cfg := TinyConfig(17)
	cfg.Parallelism = 1 // deterministic: exactly one trace completes

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	traces := 0
	setEpochHook(t, func(job campaign.Job, epoch int) {
		// Cancel partway through the second trace.
		if job.Index == 1 && epoch == 2 {
			cancel()
		}
		if epoch == 0 {
			traces++
		}
	})

	ds, err := CollectContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ds.Traces) != 1 {
		t.Fatalf("partial dataset has %d traces, want exactly the 1 completed before cancel", len(ds.Traces))
	}
	if got := len(ds.Traces[0].Records); got != cfg.EpochsPerTrace {
		t.Errorf("surviving trace truncated: %d records", got)
	}
	if traces > 2 {
		t.Errorf("%d traces started after cancellation, want dispatch to stop", traces)
	}
}

// TestSeedDerivation pins the satellite fix: seed 0 must not degenerate,
// and catalog/trace seed streams must never collide.
func TestSeedDerivation(t *testing.T) {
	zero := RunConfig{}.defaults()
	if zero.Catalog.Seed == 7777 || zero.Catalog.Seed == 0 {
		t.Errorf("seed-0 catalog seed = %d; still the degenerate constant", zero.Catalog.Seed)
	}
	one := RunConfig{Seed: 1}.defaults()
	if zero.Catalog.Seed == one.Catalog.Seed {
		t.Error("seed 0 and seed 1 derive the same catalog seed")
	}

	// All trace seeds and the catalog seed must be pairwise distinct, at
	// paper scale and beyond.
	for _, base := range []int64{0, 1, 42} {
		cfg := RunConfig{Seed: base}.defaults()
		seen := map[int64]string{cfg.Catalog.Seed: "catalog"}
		for p := 0; p < 40; p++ {
			for tr := 0; tr < 10; tr++ {
				s := sim.DeriveSeed(cfg.Seed, traceSeedStream(p, tr))
				if prev, dup := seen[s]; dup {
					t.Fatalf("base %d: trace (%d,%d) seed %d collides with %s", base, p, tr, s, prev)
				}
				seen[s] = "another trace"
			}
		}
	}
}

// TestCollectDeterministicAcrossSeedZero: seed 0 campaigns are now
// first-class — reproducible and distinct from seed 1.
func TestCollectSeedZero(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(0)
	cfg.Catalog.Seed = 0 // let defaults derive it from Seed == 0
	a := Collect(cfg)
	b := Collect(cfg)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("seed-0 campaigns are not reproducible")
	}
	cfg1 := TinyConfig(1)
	cfg1.Catalog.Seed = 0
	c := Collect(cfg1)
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Error("seed 0 and seed 1 produced identical datasets")
	}
}
