package testbed

import (
	"testing"

	"repro/internal/availbw"
)

// TinyConfig returns a minimal campaign for tests: 3 paths, 1 trace each,
// 6 epochs, short phases.
func TinyConfig(seed int64) RunConfig {
	return RunConfig{
		Seed: seed,
		Catalog: CatalogConfig{
			Seed:      seed + 7777,
			NumPaths:  3,
			NumDSL:    1,
			NumTrans:  1,
			NumKorea:  0,
			MinCapBps: 3e6,
			MaxCapBps: 10e6,
		},
		TracesPerPath:    1,
		EpochsPerTrace:   6,
		PingDuration:     15,
		TransferSec:      10,
		EpochGap:         4,
		SmallWindowBytes: 20 * 1024,
		SmallTransferSec: 6,
		Pathload: availbw.Config{
			StreamLength:   60,
			StreamsPerRate: 1,
			MaxIterations:  8,
		},
	}
}

func TestCollectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	ds := Collect(TinyConfig(42))
	if got := len(ds.Traces); got != 3 {
		t.Fatalf("traces = %d, want 3", got)
	}
	for _, tr := range ds.Traces {
		if len(tr.Records) != 6 {
			t.Fatalf("trace %s has %d records, want 6", tr.Path, len(tr.Records))
		}
		for _, r := range tr.Records {
			t.Logf("%s ep%d: Â=%.2fMbps (true %.2f) T̂=%.1fms p̂=%.4f | R=%.2fMbps T=%.1fms p=%.4f | T̃=%.1fms p̃=%.4f | small=%.2fMbps",
				r.Path, r.Epoch, r.AvailBw/1e6, r.AvailBwTrue/1e6, r.PreRTT*1e3, r.PreLoss,
				r.Throughput/1e6, r.FlowRTT*1e3, r.FlowLoss, r.DurRTT*1e3, r.DurLoss, r.SmallThroughput/1e6)
			if r.Throughput <= 0 {
				t.Errorf("%s ep%d: zero throughput", r.Path, r.Epoch)
			}
			if r.PreRTT <= 0 {
				t.Errorf("%s ep%d: no pre-flow RTT", r.Path, r.Epoch)
			}
		}
	}
}
