package testbed

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestCollectStreamMatchesCollect: the streamed trace sequence is the
// same dataset CollectContext materializes — same traces, same order —
// so streaming is purely an execution-memory choice, not a semantic one.
func TestCollectStreamMatchesCollect(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(42)
	cfg.Parallelism = 3
	want, err := CollectContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []Trace
	if err := CollectStream(context.Background(), cfg, func(tr Trace) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Traces, got) {
		t.Error("streamed traces differ from the materialized dataset")
	}
	if want.Label != cfg.DatasetLabel() {
		t.Errorf("DatasetLabel %q does not match Collect's label %q", cfg.DatasetLabel(), want.Label)
	}
}

// TestCollectStreamSinkErrorCancels: a failing sink stops the campaign
// and surfaces its error.
func TestCollectStreamSinkErrorCancels(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	boom := errors.New("disk full")
	calls := 0
	err := CollectStream(context.Background(), TinyConfig(42), func(tr Trace) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after failing, want 1", calls)
	}
}
