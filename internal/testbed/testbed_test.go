package testbed

import (
	"reflect"
	"testing"
)

func TestCatalogComposition(t *testing.T) {
	cfg := CatalogConfig{Seed: 1}
	paths := Catalog(cfg)
	if len(paths) != 35 {
		t.Fatalf("catalog size %d, want 35", len(paths))
	}
	count := map[PathClass]int{}
	for _, p := range paths {
		count[p.Class]++
	}
	if count[ClassDSL] != 7 || count[ClassTransatlantic] != 5 || count[ClassKorea] != 1 {
		t.Errorf("class counts %v, want 7 DSL / 5 transatlantic / 1 Korea", count)
	}
	if count[ClassUS] != 35-13 {
		t.Errorf("US paths %d, want %d", count[ClassUS], 35-13)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(CatalogConfig{Seed: 9})
	b := Catalog(CatalogConfig{Seed: 9})
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed catalogs differ")
	}
	c := Catalog(CatalogConfig{Seed: 10})
	if reflect.DeepEqual(a, c) {
		t.Error("different-seed catalogs identical")
	}
}

func TestCatalogPathProperties(t *testing.T) {
	for _, pc := range Catalog(CatalogConfig{Seed: 3}) {
		bn := pc.BottleneckBps()
		switch pc.Class {
		case ClassDSL:
			if bn < 0.5e6 || bn > 2e6 {
				t.Errorf("%s: DSL bottleneck %.2f Mbps", pc.Name, bn/1e6)
			}
		default:
			if bn < 10e6 || bn > 100e6 {
				t.Errorf("%s: bottleneck %.2f Mbps outside [10,100]", pc.Name, bn/1e6)
			}
		}
		if pc.BaseUtilization < 0 || pc.BaseUtilization > 0.97 {
			t.Errorf("%s: utilization %v", pc.Name, pc.BaseUtilization)
		}
		if len(pc.Spec.Forward) != 3 {
			t.Errorf("%s: %d forward hops, want 3", pc.Name, len(pc.Spec.Forward))
		}
		if pc.ElasticFlows != len(pc.ElasticRTTs) {
			t.Errorf("%s: %d elastic flows but %d RTTs", pc.Name, pc.ElasticFlows, len(pc.ElasticRTTs))
		}
		// The middle hop must be the bottleneck.
		if pc.Spec.Forward[1].CapacityBps != bn {
			t.Errorf("%s: bottleneck not the middle hop", pc.Name)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(5)
	cfg.Parallelism = 2
	a := Collect(cfg)
	b := Collect(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("same-seed campaigns differ (parallelism must not affect results)")
	}
}

func TestCollectRecordsComplete(t *testing.T) {
	ds := Collect(TinyConfig(8))
	for _, tr := range ds.Traces {
		for i, r := range tr.Records {
			if r.Epoch != i {
				t.Errorf("%s: record %d has epoch %d", tr.Path, i, r.Epoch)
			}
			if r.PreRTT <= 0 {
				t.Errorf("%s ep%d: no pre-flow RTT", tr.Path, i)
			}
			if r.Throughput <= 0 {
				t.Errorf("%s ep%d: zero throughput", tr.Path, i)
			}
			if r.SmallWindowBytes == 0 || r.SmallThroughput <= 0 {
				t.Errorf("%s ep%d: missing small-window transfer", tr.Path, i)
			}
			if r.DurRTT <= 0 {
				t.Errorf("%s ep%d: no during-flow RTT", tr.Path, i)
			}
			if r.PreLoss < 0 || r.PreLoss > 1 || r.FlowLoss < 0 || r.FlowLoss > 1 {
				t.Errorf("%s ep%d: loss rates out of range", tr.Path, i)
			}
			if r.FlowEventRate > r.FlowLoss+1e-9 {
				t.Errorf("%s ep%d: event rate %v above loss rate %v", tr.Path, i, r.FlowEventRate, r.FlowLoss)
			}
			if r.StartTime < 0 {
				t.Errorf("%s ep%d: negative start time", tr.Path, i)
			}
		}
	}
}

func TestCollectEpochTimesIncrease(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	ds := Collect(TinyConfig(2))
	for _, tr := range ds.Traces {
		for i := 1; i < len(tr.Records); i++ {
			if tr.Records[i].StartTime <= tr.Records[i-1].StartTime {
				t.Fatalf("%s: epoch times not increasing", tr.Path)
			}
		}
	}
}

func TestSecondSetHasCheckpoints(t *testing.T) {
	cfg := SecondSet(1, true)
	cfg.Catalog.NumPaths = 2
	cfg.EpochsPerTrace = 2
	cfg.TransferSec = 20
	cfg.Checkpoints = []float64{5, 10}
	cfg.PingDuration = 10
	ds := Collect(cfg)
	for _, tr := range ds.Traces {
		for _, r := range tr.Records {
			if len(r.Checkpoints) != 2 {
				t.Fatalf("checkpoints = %v", r.Checkpoints)
			}
			if r.Checkpoints[0] <= 0 || r.Checkpoints[1] <= 0 {
				t.Errorf("empty checkpoint values: %v", r.Checkpoints)
			}
		}
	}
}

func TestRunConfigDefaults(t *testing.T) {
	cfg := RunConfig{}.defaults()
	if cfg.TracesPerPath != 7 || cfg.EpochsPerTrace != 150 {
		t.Errorf("paper-scale defaults wrong: %+v", cfg)
	}
	if cfg.PingDuration != 60 || cfg.TransferSec != 50 {
		t.Errorf("paper durations wrong: %+v", cfg)
	}
	if cfg.LargeWindowBytes != 1<<20 {
		t.Errorf("W default %d, want 1 MB", cfg.LargeWindowBytes)
	}
	if cfg.Catalog.Horizon <= 0 {
		t.Error("horizon not derived")
	}
}

func TestPaperScaleMatchesPaper(t *testing.T) {
	cfg := PaperScale(1).defaults()
	if cfg.Catalog.defaults().NumPaths != 35 {
		t.Error("paper scale should have 35 paths")
	}
	if cfg.SmallWindowBytes != 20*1024 {
		t.Error("paper scale needs the 20 KB companion transfer")
	}
}
