package testbed

import (
	"reflect"
	"testing"

	"repro/internal/tcpsim"
)

func TestScenarioCatalogShape(t *testing.T) {
	paths := ScenarioCatalog(ScenarioConfig{Seed: 7, PathsPerScenario: 2})
	want := 3 * 4 * 2 // senders × links × instances
	if len(paths) != want {
		t.Fatalf("catalog has %d paths, want %d", len(paths), want)
	}
	seen := map[string]bool{}
	for _, pc := range paths {
		if seen[pc.Name] {
			t.Errorf("duplicate path name %q", pc.Name)
		}
		seen[pc.Name] = true
		if pc.CC == "" || pc.LinkType == "" {
			t.Errorf("%s: missing CC (%q) or link type (%q)", pc.Name, pc.CC, pc.LinkType)
		}
		if pc.LinkType == LinkRwndLimited && pc.TargetWindowBytes == 0 {
			t.Errorf("%s: rwnd-limited scenario without a target window cap", pc.Name)
		}
		if pc.LinkType == LinkCellular {
			found := false
			for _, h := range pc.Spec.Forward {
				if h.Rate != nil && len(h.Rate.Steps) > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: cellular scenario without a rate schedule", pc.Name)
			}
		}
	}
}

// TestScenarioCatalogSharedSubstrate checks the property ext-cc's
// cross-sender comparisons rest on: within one (link, instance) cell the
// reno/cubic/bbr paths are identical except for name and CC.
func TestScenarioCatalogSharedSubstrate(t *testing.T) {
	paths := ScenarioCatalog(ScenarioConfig{Seed: 3})
	byCell := map[string][]PathConfig{}
	for _, pc := range paths {
		key := string(pc.LinkType)
		byCell[key] = append(byCell[key], pc)
	}
	for cell, group := range byCell {
		if len(group) != 3 {
			t.Fatalf("cell %s has %d paths, want 3", cell, len(group))
		}
		base := group[0]
		for _, pc := range group[1:] {
			a, b := base, pc
			a.Name, b.Name = "", ""
			a.CC, b.CC = "", ""
			if !reflect.DeepEqual(a, b) {
				t.Errorf("cell %s: substrate differs between %s and %s", cell, base.Name, pc.Name)
			}
		}
	}
}

func TestScenarioCatalogDeterministic(t *testing.T) {
	a := ScenarioCatalog(ScenarioConfig{Seed: 11})
	b := ScenarioCatalog(ScenarioConfig{Seed: 11})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different catalogs")
	}
	c := ScenarioCatalog(ScenarioConfig{Seed: 12})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical catalogs")
	}
}

func TestScenarioScaledRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("collects a small campaign")
	}
	cfg := ScenarioScaled(5, ScenarioConfig{
		Senders: []tcpsim.Congestion{tcpsim.CCReno, tcpsim.CCBBR},
		Links:   []LinkType{LinkRandomDrop, LinkRwndLimited},
	})
	cfg.TracesPerPath = 1
	cfg.EpochsPerTrace = 3
	ds := Collect(cfg)
	if len(ds.Traces) != 4 {
		t.Fatalf("collected %d traces, want 4", len(ds.Traces))
	}
	for _, tr := range ds.Traces {
		for _, rec := range tr.Records {
			if rec.CC == "" || rec.Link == "" {
				t.Fatalf("%s: epoch record missing CC/link identity", tr.Path)
			}
			if rec.Throughput <= 0 {
				t.Errorf("%s epoch %d: no throughput", tr.Path, rec.Epoch)
			}
			if rec.Link == string(LinkRwndLimited) {
				// The 4-8 KB cap keeps the large transfer slow: the whole
				// point of the regime. 8 KB / 20 ms would be ~3.2 Mbps; any
				// healthy uncapped path here would do far more.
				if rec.Throughput > 8e6 {
					t.Errorf("%s: rwnd-limited epoch ran at %.1f Mbps — cap not applied", tr.Path, rec.Throughput/1e6)
				}
			}
		}
	}
}
