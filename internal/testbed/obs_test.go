package testbed

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCollectObs runs a one-path campaign with the observability layer
// attached and checks the three things the wiring promises: the span
// tree mirrors the Fig.-1 epoch timeline (epoch → pathload/ping/
// transfer/small/gap, with sim.run segments below), the campaign_* and
// testbed_packets_* metrics are populated, and the exposition is valid.
func TestCollectObs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(7)
	cfg.Catalog.NumPaths = 1
	cfg.Catalog.NumDSL = 0
	cfg.Catalog.NumTrans = 0
	cfg.EpochsPerTrace = 2
	o := obs.New(obs.DefaultSpanCapacity)
	cfg.Obs = o

	ds, err := CollectContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(ds.Traces))
	}

	spans, dropped := o.T().Snapshot()
	byName := map[string]int{}
	byID := map[uint64]obs.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name]++
		byID[sp.ID] = sp
	}
	if byName["campaign"] != 1 || byName["warmup"] != 1 {
		t.Errorf("campaign/warmup spans = %d/%d, want 1/1", byName["campaign"], byName["warmup"])
	}
	if byName["epoch"] != cfg.EpochsPerTrace {
		t.Errorf("epoch spans = %d, want %d", byName["epoch"], cfg.EpochsPerTrace)
	}
	for _, name := range []string{"pathload", "ping", "transfer", "small", "gap"} {
		if byName[name] != cfg.EpochsPerTrace {
			t.Errorf("%s spans = %d, want %d", name, byName[name], cfg.EpochsPerTrace)
		}
	}
	if byName["sim.run"] == 0 {
		t.Error("no sim.run spans under the phases")
	}
	// Every phase span parents to an epoch span; sim.run spans parent to
	// a phase (or the warmup) span. dropped may be non-zero on big
	// configs but must be zero at this size.
	if dropped != 0 {
		t.Errorf("tracer dropped %d spans", dropped)
	}
	phaseNames := map[string]bool{"pathload": true, "ping": true, "transfer": true, "small": true, "gap": true}
	for _, sp := range spans {
		switch {
		case phaseNames[sp.Name]:
			if parent, ok := byID[sp.Parent]; !ok || parent.Name != "epoch" {
				t.Errorf("%s span parent = %+v, want an epoch span", sp.Name, parent)
			}
		case sp.Name == "sim.run":
			if parent, ok := byID[sp.Parent]; !ok || (!phaseNames[parent.Name] && parent.Name != "warmup") {
				t.Errorf("sim.run parent = %q, want a phase or warmup span", parent.Name)
			}
		}
	}
	if o.T().Active() != 0 {
		t.Errorf("%d spans left open after the campaign", o.T().Active())
	}

	var buf bytes.Buffer
	if err := o.M().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"campaign_jobs_completed_total 1",
		"campaign_epochs_total 2",
		"testbed_packets_pooled_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, out)
		}
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

// TestCollectObsOff pins that runs with and without Obs attached produce
// identical datasets: telemetry is execution instrumentation, never part
// of the campaign's identity.
func TestCollectObsOff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign; skipped in -short mode")
	}
	cfg := TinyConfig(11)
	cfg.Catalog.NumPaths = 1
	cfg.Catalog.NumDSL = 0
	cfg.Catalog.NumTrans = 0
	cfg.EpochsPerTrace = 2

	plain := Collect(cfg)
	cfg.Obs = obs.New(64) // tiny ring: spans drop, results must not care
	instrumented := Collect(cfg)

	if len(plain.Traces) != len(instrumented.Traces) {
		t.Fatalf("trace counts differ: %d vs %d", len(plain.Traces), len(instrumented.Traces))
	}
	for i := range plain.Traces {
		a, b := plain.Traces[i], instrumented.Traces[i]
		if len(a.Records) != len(b.Records) {
			t.Fatalf("record counts differ for %s", a.Path)
		}
		for j := range a.Records {
			if !reflect.DeepEqual(a.Records[j], b.Records[j]) {
				t.Errorf("record %d differs with obs attached:\n  %+v\n  %+v", j, a.Records[j], b.Records[j])
			}
		}
	}
}
