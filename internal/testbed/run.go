package testbed

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/availbw"
	"repro/internal/campaign"
	"repro/internal/iperf"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Seed-stream identifiers for sim.DeriveSeed. Keeping them distinct (and
// documented) guarantees the catalog's RNG stream can never collide with
// a trace's, which the old additive scheme (seed + 7777, seed + 10007·p +
// 101·t) did not: path 0's trace 77 shared the catalog seed.
const (
	seedStreamCatalog   = 0xCA7A106<<32 | 1 // primary-set path catalog
	seedStreamSecondSet = 0xCA7A106<<32 | 2 // Mar-2006-style second catalog
)

// traceSeedStream returns the DeriveSeed stream for one (path, trace)
// slot. Streams are disjoint from the catalog streams above because the
// top 32 bits can never equal 0xCA7A106 for realistic path counts.
func traceSeedStream(pathIdx, traceIdx int) uint64 {
	return uint64(pathIdx+1)<<20 | uint64(traceIdx)
}

// Flow IDs used on every testbed path.
const (
	flowTransfer netem.FlowID = 1
	flowProbe    netem.FlowID = 2
	flowChirp    netem.FlowID = 3
	flowSmall    netem.FlowID = 4
	flowElastic0 netem.FlowID = 100
	flowCross0   netem.FlowID = 200
)

// RunConfig controls a measurement campaign. Zero fields take the paper's
// values via defaults().
type RunConfig struct {
	Seed    int64
	Catalog CatalogConfig
	// Paths, when non-empty, replaces the generated catalog: the
	// campaign runs exactly these paths (the scenario matrix uses this).
	Paths          []PathConfig
	TracesPerPath  int     // paper: 7
	EpochsPerTrace int     // paper: 150
	PingDuration   float64 // paper: 60 s
	TransferSec    float64 // paper: 50 s (120 s in the second set)
	EpochGap       float64 // idle between epochs, seconds

	LargeWindowBytes int // W of the target transfer (paper: 1 MB)
	SmallWindowBytes int // W of the companion transfer (paper: 20 KB); 0 disables
	SmallTransferSec float64

	Checkpoints []float64 // prefix durations for Fig. 11 (e.g. 30, 60)

	Pathload availbw.Config
	Ping     probe.Config

	Parallelism int // worker goroutines; 0 = GOMAXPROCS

	// Retries is how many times a faulted trace (recovered panic) is
	// re-run with the same seed before being reported as failed.
	// 0 means the default of 1; negative disables retries.
	Retries int

	// Observer receives campaign progress callbacks (nil: none). It is
	// execution instrumentation, not part of the campaign's identity:
	// results are byte-identical whatever observer is attached.
	Observer campaign.Observer

	// Obs, when non-nil, receives spans and metrics from the campaign:
	// a campaign.Telemetry observer is attached automatically, every
	// trace job records an epoch/phase span tree (pathload, ping,
	// transfer, small, gap — the Fig.-1 timeline), the engines' sim.run
	// segments nest under those phases, and packet-pool recycling is
	// exported as testbed_packets_* counters. Like Observer it never
	// changes results.
	Obs *obs.Obs
}

func (c RunConfig) defaults() RunConfig {
	if c.TracesPerPath == 0 {
		c.TracesPerPath = 7
	}
	if c.EpochsPerTrace == 0 {
		c.EpochsPerTrace = 150
	}
	if c.PingDuration == 0 {
		c.PingDuration = 60
	}
	if c.TransferSec == 0 {
		c.TransferSec = 50
	}
	if c.EpochGap == 0 {
		c.EpochGap = 20
	}
	if c.LargeWindowBytes == 0 {
		c.LargeWindowBytes = 1 << 20
	}
	if c.SmallTransferSec == 0 {
		c.SmallTransferSec = c.TransferSec
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	// Horizon for load processes: a bit beyond the full trace duration.
	perEpoch := 25 + c.PingDuration + c.TransferSec + c.EpochGap
	if c.SmallWindowBytes > 0 {
		perEpoch += c.SmallTransferSec + 2
	}
	if c.Catalog.Horizon == 0 {
		c.Catalog.Horizon = perEpoch*float64(c.EpochsPerTrace) + 600
	}
	if c.Catalog.Seed == 0 {
		c.Catalog.Seed = sim.DeriveSeed(c.Seed, seedStreamCatalog)
	}
	return c
}

// DefaultScaled returns a configuration sized to run a meaningful dataset
// quickly: fewer, slower paths, shorter phases, fewer epochs.
func DefaultScaled(seed int64) RunConfig {
	return RunConfig{
		Seed: seed,
		Catalog: CatalogConfig{
			NumPaths:  12,
			NumDSL:    3,
			NumTrans:  2,
			NumKorea:  1,
			MinCapBps: 3e6,
			MaxCapBps: 20e6,
		},
		TracesPerPath:    2,
		EpochsPerTrace:   40,
		PingDuration:     30,
		TransferSec:      30,
		EpochGap:         8,
		SmallWindowBytes: 20 * 1024,
		SmallTransferSec: 30,
		Pathload: availbw.Config{
			StreamLength:   80,
			StreamsPerRate: 1,
			MaxIterations:  10,
		},
	}
}

// PaperScale returns the paper's full-scale May-2004 configuration:
// 35 paths × 7 traces × 150 epochs, 60 s ping, 50 s transfers, plus the
// 20 KB window-limited transfer.
func PaperScale(seed int64) RunConfig {
	return RunConfig{
		Seed:             seed,
		SmallWindowBytes: 20 * 1024,
	}
}

// SecondSet returns the Mar-2006-style configuration: 24 fresh paths, 120 s
// transfers with 30/60 s checkpoints, no DSL except one, used for Fig. 11.
func SecondSet(seed int64, scaled bool) RunConfig {
	cfg := RunConfig{
		Seed: seed,
		Catalog: CatalogConfig{
			Seed:     sim.DeriveSeed(seed, seedStreamSecondSet),
			NumPaths: 24,
			NumDSL:   1,
			NumTrans: 0,
			NumKorea: 0,
		},
		TransferSec: 120,
		Checkpoints: []float64{30, 60},
	}
	if scaled {
		cfg.Catalog.NumPaths = 6
		cfg.Catalog.MinCapBps = 3e6
		cfg.Catalog.MaxCapBps = 20e6
		cfg.TracesPerPath = 1
		cfg.EpochsPerTrace = 12
		cfg.PingDuration = 30
		cfg.TransferSec = 60
		cfg.Checkpoints = []float64{15, 30}
		cfg.EpochGap = 8
		cfg.Pathload = availbw.Config{StreamLength: 80, StreamsPerRate: 1, MaxIterations: 10}
	}
	return cfg
}

// testHookPreEpoch, when non-nil, runs before every epoch. Tests use it
// to inject faults (panics) and cancellations into specific traces.
var testHookPreEpoch func(job campaign.Job, epoch int)

// Collect runs the full campaign described by cfg and returns the dataset.
// It is a compatibility wrapper over CollectContext for callers that need
// neither cancellation nor error reporting.
func Collect(cfg RunConfig) *Dataset {
	ds, _ := CollectContext(context.Background(), cfg)
	return ds
}

// CollectContext runs the campaign on the campaign runner: trace jobs
// execute in parallel (each owns a private engine), faults in one trace
// are isolated and retried with the same seed, and progress flows to
// cfg.Observer.
//
// Results are assembled in job order regardless of Parallelism, so equal
// configurations yield byte-identical datasets. Cancelling ctx stops the
// campaign at the next epoch boundary of each running trace; completed
// traces are returned as a partial dataset alongside ctx.Err(). Traces
// that failed after all retries are omitted from the dataset and reported
// joined into the returned error.
func CollectContext(ctx context.Context, cfg RunConfig) (*Dataset, error) {
	cfg = cfg.defaults()
	jobs, pcs := campaignJobs(cfg)
	hooks := newObsHooks(cfg.Obs)
	runner := &campaign.Runner[Trace]{
		Parallelism: cfg.Parallelism,
		Retries:     max(cfg.Retries, 0),
		Observer:    hooks.observer(cfg.Observer),
	}
	results, ctxErr := runner.Run(ctx, jobs, func(ctx context.Context, job campaign.Job, rep *campaign.Reporter) (Trace, error) {
		return runTrace(ctx, cfg, pcs[job.Index], job, rep, hooks)
	})

	ds := &Dataset{Label: cfg.DatasetLabel()}
	var errs []error
	for _, res := range results {
		switch {
		case res.Err == nil:
			ds.Traces = append(ds.Traces, res.Value)
		case res.Attempts > 0 && !isContextErr(res.Err):
			errs = append(errs, res.Err)
		}
	}
	if ctxErr != nil {
		errs = append(errs, ctxErr)
	}
	return ds, joinErrs(errs)
}

// CollectStream runs the same campaign as CollectContext but streams
// each completed trace to sink in job order instead of materializing the
// whole dataset: at any moment only the in-flight traces (one per
// worker, plus the reorder buffer) are in memory, so a 10k-path campaign
// runs in constant RSS when the sink writes traces straight to a
// traceio.Writer. The stream is order-deterministic: equal configs feed
// the sink the identical trace sequence regardless of Parallelism.
//
// A sink error cancels the campaign and is returned. Traces that failed
// after all retries are skipped (never handed to the sink) and reported
// joined in the returned error, like CollectContext; cancelling ctx
// returns ctx.Err() after the traces already completed have been
// delivered.
func CollectStream(ctx context.Context, cfg RunConfig, sink func(Trace) error) error {
	cfg = cfg.defaults()
	jobs, pcs := campaignJobs(cfg)
	hooks := newObsHooks(cfg.Obs)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var sinkErr error // written under the runner's delivery lock, read after Run
	runner := &campaign.Runner[Trace]{
		Parallelism: cfg.Parallelism,
		Retries:     max(cfg.Retries, 0),
		Observer:    hooks.observer(cfg.Observer),
		Sink: func(res campaign.Result[Trace]) {
			if sinkErr != nil || res.Err != nil {
				return
			}
			if err := sink(res.Value); err != nil {
				sinkErr = err
				cancel()
			}
		},
	}
	results, ctxErr := runner.Run(ctx, jobs, func(ctx context.Context, job campaign.Job, rep *campaign.Reporter) (Trace, error) {
		return runTrace(ctx, cfg, pcs[job.Index], job, rep, hooks)
	})

	var errs []error
	for _, res := range results {
		if res.Err != nil && res.Attempts > 0 && !isContextErr(res.Err) {
			errs = append(errs, res.Err)
		}
	}
	switch {
	case sinkErr != nil:
		// The context error is our own cancel; the sink failure is the cause.
		errs = append(errs, sinkErr)
	case ctxErr != nil:
		errs = append(errs, ctxErr)
	}
	return joinErrs(errs)
}

// DatasetLabel is the label Collect stamps on the dataset for this
// config, exposed so streaming writers can put it in their header.
func (cfg RunConfig) DatasetLabel() string { return fmt.Sprintf("seed%d", cfg.Seed) }

// campaignJobs expands the config into the campaign's job list plus the
// per-job path configs, in the fixed order the determinism contract
// keys on.
func campaignJobs(cfg RunConfig) ([]campaign.Job, []PathConfig) {
	paths := cfg.Paths
	if len(paths) == 0 {
		paths = Catalog(cfg.Catalog)
	}
	jobs := make([]campaign.Job, 0, len(paths)*cfg.TracesPerPath)
	pcs := make([]PathConfig, 0, cap(jobs))
	for p, pc := range paths {
		for t := 0; t < cfg.TracesPerPath; t++ {
			jobs = append(jobs, campaign.Job{
				Index:  len(jobs),
				Path:   pc.Name,
				Trace:  t,
				Seed:   sim.DeriveSeed(cfg.Seed, traceSeedStream(p, t)),
				Epochs: cfg.EpochsPerTrace,
			})
			pcs = append(pcs, pc)
		}
	}
	return jobs, pcs
}

// obsHooks bundles the testbed's observability wiring: the campaign
// telemetry observer (spans + campaign_* metrics) and the packet-pool
// counters. A nil *obsHooks — the Obs-off state — is safe everywhere.
type obsHooks struct {
	tel    *campaign.Telemetry
	pooled *obs.Counter // pool recycles (Puts) summed over traces
	leaked *obs.Counter // packets drawn but never returned
	allocs *obs.Counter // Gets that fell through to the allocator
}

func newObsHooks(o *obs.Obs) *obsHooks {
	if o == nil {
		return nil
	}
	m := o.M()
	return &obsHooks{
		tel:    campaign.NewTelemetry(o),
		pooled: m.Counter("testbed_packets_pooled_total", "packets recycled through path pools"),
		leaked: m.Counter("testbed_packets_leaked_total", "packets drawn from pools and never returned"),
		allocs: m.Counter("testbed_packets_allocated_total", "pool misses that hit the allocator"),
	}
}

// observer merges the user's observer with the telemetry one.
func (h *obsHooks) observer(user campaign.Observer) campaign.Observer {
	if h == nil {
		return user
	}
	if user == nil {
		return h.tel
	}
	return campaign.MultiObserver{user, h.tel}
}

// jobSpan returns the open campaign span for the job, or nil.
func (h *obsHooks) jobSpan(index int) *obs.Span {
	if h == nil {
		return nil
	}
	return h.tel.JobSpan(index)
}

// tracePool folds one finished trace's pool counters into the metrics.
func (h *obsHooks) tracePool(p *netem.PacketPool) {
	if h == nil {
		return
	}
	h.pooled.Add(uint64(p.Puts))
	h.allocs.Add(uint64(p.News))
	if outstanding := p.Gets - p.Puts; outstanding > 0 {
		h.leaked.Add(uint64(outstanding))
	}
}

// runTrace simulates one trace: builds a fresh engine, path and ambient
// traffic, then executes EpochsPerTrace measurement epochs back-to-back.
// ctx is checked at every epoch boundary, so cancellation aborts the
// trace cleanly mid-run without corrupting other traces.
func runTrace(ctx context.Context, cfg RunConfig, pc PathConfig, job campaign.Job, rep *campaign.Reporter, hooks *obsHooks) (Trace, error) {
	rng := sim.NewRNG(job.Seed)
	eng := sim.NewEngine()
	path := netem.NewPath(eng, rng.Fork(), pc.Spec)
	env := startAmbient(eng, rng, path, pc, cfg)

	probe.NewResponder(path.B, flowProbe)
	prober := probe.NewProber(eng, path.A, flowProbe, cfg.Ping)

	// The campaign span for this job (nil when telemetry is off) roots
	// the trace's epoch/phase tree; the engine hangs its sim.run
	// segments off whichever phase span is current.
	jobSpan := hooks.jobSpan(job.Index)
	defer eng.SetSpan(nil)

	// Let ambient traffic reach steady state before measuring.
	warm := jobSpan.Child("warmup")
	eng.SetSpan(warm)
	eng.RunUntil(eng.Now() + 5)
	warm.End()
	prober.Start()

	tr := Trace{Path: pc.Name, Class: string(pc.Class), Index: job.Trace}
	for ep := 0; ep < cfg.EpochsPerTrace; ep++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		if testHookPreEpoch != nil {
			testHookPreEpoch(job, ep)
		}
		mark := eng.Processed()
		esp := jobSpan.Child("epoch")
		rec := runEpoch(cfg, pc, eng, path, prober, env, esp)
		rec.Path = pc.Name
		rec.Class = string(pc.Class)
		rec.Trace = job.Trace
		rec.Epoch = ep
		tr.Records = append(tr.Records, rec)
		events := eng.ProcessedSince(mark)
		esp.AddCount(int64(events))
		esp.End()
		rep.Epoch(ep, eng.Now(), events)
	}
	prober.Stop()
	env.stop()
	hooks.tracePool(path.Pool)
	return tr, nil
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func joinErrs(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}

// ambient bundles a trace's cross-traffic machinery.
type ambient struct {
	sources []netem.Source
	elastic []*tcpsim.Connection
	load    *netem.LoadProcess
	openBps float64 // configured average open-loop rate at load 1.0
}

func (a *ambient) stop() {
	for _, s := range a.sources {
		s.Stop()
	}
	for _, c := range a.elastic {
		c.Stop()
	}
}

func startAmbient(eng *sim.Engine, rng *sim.RNG, path *netem.Path, pc PathConfig, cfg RunConfig) *ambient {
	env := &ambient{}
	bn := path.Bottleneck()
	env.load = netem.GenerateLoad(rng.Fork(), pc.LoadCfg)
	env.openBps = pc.BaseUtilization * bn.CapacityBps

	if env.openBps > 0 {
		paretoBps := env.openBps * pc.ParetoShare
		poissonBps := env.openBps - paretoBps
		if poissonBps > 0 {
			src := netem.NewPoissonSource(eng, rng.Fork(), flowCross0, poissonBps, 1000, env.load, bn)
			src.Start()
			env.sources = append(env.sources, src)
		}
		if paretoBps > 0 {
			// Several independent ON/OFF sources: the aggregate stays
			// bursty at many timescales without one source being able to
			// swamp the bottleneck single-handedly.
			const nSrc = 3
			meanOn, meanOff := 0.4, 0.6
			for k := 0; k < nSrc; k++ {
				share := paretoBps / nSrc
				peak := share * (meanOn + meanOff) / meanOn
				src := netem.NewParetoOnOffSource(eng, rng.Fork(), flowCross0+1+netem.FlowID(k), peak, 1000, meanOn, meanOff, 1.5, env.load, bn)
				src.Start()
				env.sources = append(env.sources, src)
			}
		}
	}

	for j := 0; j < pc.ElasticFlows; j++ {
		extra := 0.0
		if j < len(pc.ElasticRTTs) {
			extra = pc.ElasticRTTs[j]
		}
		// Windows vary per flow so the elastic herd mixes small and large
		// competitors. The RNG draw stays in the ambient stream so the
		// trace remains reproducible.
		win := (32 + rng.Intn(96)) * 1024
		conn := tcpsim.DialWithExtraDelay(eng, path, flowElastic0+netem.FlowID(j), extra, tcpsim.Config{
			MaxWindowBytes: win,
			DelayedAck:     true,
		})
		// Stagger starts; some flows are active only for a window of the
		// trace, creating natural level shifts in the throughput series.
		startAt := rng.Uniform(0, 30)
		eng.Schedule(startAt, conn.Sender.Start)
		if rng.Bool(0.3) && pc.LoadCfg.Horizon > 0 {
			stopAt := rng.Uniform(0.3, 0.9) * pc.LoadCfg.Horizon
			eng.At(stopAt, conn.Sender.Stop)
		}
		env.elastic = append(env.elastic, conn)
	}
	return env
}

// runEpoch executes one Fig.-1 epoch and returns its record. esp, when
// non-nil, is the epoch's span; each measurement phase opens a child
// under it and points the engine at it, so the exported trace shows the
// epoch timeline exactly as Fig. 1 draws it.
func runEpoch(cfg RunConfig, pc PathConfig, eng *sim.Engine, path *netem.Path, prober *probe.Prober, env *ambient, esp *obs.Span) EpochRecord {
	phase := func(name string) *obs.Span {
		sp := esp.Child(name)
		eng.SetSpan(sp)
		return sp
	}
	rec := EpochRecord{StartTime: eng.Now()}
	bn := path.Bottleneck()

	// Phase 1: pathload.
	sp := phase("pathload")
	est := availbw.NewEstimator(eng, path, flowChirp, cfg.Pathload)
	abw := est.Estimate()
	rec.AvailBw = abw.Estimate
	sp.End()

	// Phase 2: 60 s of ping → (T̂, p̂); also the ground-truth avail-bw
	// window (bottleneck capacity minus non-probe arrivals).
	sp = phase("ping")
	prober.Window() // discard samples accumulated since the last epoch
	statsBefore := bn.Stats()
	tPingStart := eng.Now()
	eng.RunUntil(eng.Now() + cfg.PingDuration)
	pre := prober.Window()
	rec.PreRTT = pre.MeanRTT
	rec.PreLoss = pre.LossRate
	statsAfter := bn.Stats()
	dt := eng.Now() - tPingStart
	if dt > 0 {
		crossBits := float64(statsAfter.BytesIn-statsBefore.BytesIn) * 8
		probeBits := float64(pre.Sent * 41 * 8)
		avail := bn.CapacityBps - (crossBits-probeBits)/dt
		if avail < 0 {
			avail = 0
		}
		rec.AvailBwTrue = avail
	}
	sp.End()

	// Phase 3: the target transfer, with probing continuing → (T̃, p̃).
	// Scenario paths can override the sender's congestion control and
	// advertised window; the paper's catalog leaves both at the defaults.
	sp = phase("transfer")
	window := cfg.LargeWindowBytes
	if pc.TargetWindowBytes > 0 {
		window = pc.TargetWindowBytes
	}
	rep := iperf.Run(eng, path, flowTransfer, iperf.Config{
		Duration:    cfg.TransferSec,
		TCP:         tcpsim.Config{MaxWindowBytes: window, DelayedAck: true, Congestion: pc.CC},
		Checkpoints: cfg.Checkpoints,
	})
	dur := prober.Window()
	rec.DurRTT = dur.MeanRTT
	rec.DurLoss = dur.LossRate
	rec.Throughput = rep.ThroughputBps
	rec.FlowRTT = rep.FlowRTT
	rec.FlowLoss = rep.FlowLossRate
	rec.FlowEventRate = rep.FlowEventRate
	rec.Retransmits = rep.Retransmits
	rec.Timeouts = rep.Timeouts
	rec.LossEvents = rep.LossEvents
	rec.SegmentsSent = rep.SegmentsSent
	rec.Checkpoints = rep.Checkpoints
	if pc.CC != "" || pc.LinkType != "" {
		rec.CC = string(rep.CC)
		rec.Link = string(pc.LinkType)
		rec.PacingRate = rep.PacingRateBps
		rec.DeliveryRate = rep.DeliveryRateBps
		rec.RecoveryEpisodes = rep.RecoveryEpisodes
	}
	sp.End()

	// Phase 4: the window-limited companion transfer.
	if cfg.SmallWindowBytes > 0 {
		sp = phase("small")
		small := iperf.Run(eng, path, flowSmall, iperf.Config{
			Duration: cfg.SmallTransferSec,
			TCP:      tcpsim.Config{MaxWindowBytes: cfg.SmallWindowBytes, DelayedAck: true},
		})
		rec.SmallThroughput = small.ThroughputBps
		rec.SmallFlowLoss = small.FlowLossRate
		rec.SmallWindowBytes = cfg.SmallWindowBytes
		if rec.PreRTT > 0 {
			rec.SmallWindowLimited = float64(cfg.SmallWindowBytes)*8/rec.PreRTT < rec.AvailBw
		}
		sp.End()
	}

	// Phase 5: idle gap to the next epoch.
	sp = phase("gap")
	eng.RunUntil(eng.Now() + cfg.EpochGap)
	sp.End()
	return rec
}
