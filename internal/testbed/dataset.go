package testbed

// EpochRecord holds every quantity one measurement epoch produces, using
// the paper's Table 1 naming in the comments.
type EpochRecord struct {
	Path      string  `json:"path"`
	Class     string  `json:"class"`
	Trace     int     `json:"trace"`
	Epoch     int     `json:"epoch"`
	StartTime float64 `json:"start_time"` // virtual seconds from trace start

	// Pre-flow measurements.
	AvailBw     float64 `json:"avail_bw"`      // Â: pathload estimate, bps
	AvailBwTrue float64 `json:"avail_bw_true"` // ground-truth avail-bw, bps
	PreRTT      float64 `json:"pre_rtt"`       // T̂: ping RTT before the flow, s
	PreLoss     float64 `json:"pre_loss"`      // p̂: ping loss rate before the flow

	// Measurements during the target flow (periodic probing).
	DurRTT  float64 `json:"dur_rtt"`  // T̃
	DurLoss float64 `json:"dur_loss"` // p̃

	// The target (W = 1 MB) transfer.
	Throughput    float64 `json:"throughput"`      // R: bits per second
	FlowRTT       float64 `json:"flow_rtt"`        // T: mean RTT the flow saw
	FlowLoss      float64 `json:"flow_loss"`       // p: loss rate the flow saw
	FlowEventRate float64 `json:"flow_event_rate"` // p′: congestion events/segment
	Retransmits   int64   `json:"retransmits"`
	Timeouts      int64   `json:"timeouts"`
	LossEvents    int64   `json:"loss_events"`
	SegmentsSent  int64   `json:"segments_sent"`

	// Scenario-matrix identity and CC-agnostic sender state (PR 10).
	// Empty/zero on paper-default campaigns so legacy datasets and the
	// committed seeds keep their byte layout.
	CC               string  `json:"cc,omitempty"`                // congestion control of the target transfer
	Link             string  `json:"link,omitempty"`              // bottleneck link regime (LinkType)
	PacingRate       float64 `json:"pacing_rate,omitempty"`       // window/SRTT at transfer end, bps
	DeliveryRate     float64 `json:"delivery_rate,omitempty"`     // measured delivery rate at transfer end, bps
	RecoveryEpisodes int64   `json:"recovery_episodes,omitempty"` // fast-recovery episodes during the transfer

	// Prefix throughputs for the requested checkpoint durations (D2).
	Checkpoints []float64 `json:"checkpoints,omitempty"`

	// The window-limited (W = 20 KB) companion transfer; zero if disabled.
	SmallThroughput    float64 `json:"small_throughput,omitempty"`
	SmallFlowLoss      float64 `json:"small_flow_loss,omitempty"`
	SmallWindowBytes   int     `json:"small_window_bytes,omitempty"`
	SmallWindowLimited bool    `json:"small_window_limited,omitempty"`
}

// Lossy reports whether the pre-flow probing saw any loss, selecting the
// PFTK branch of the FB predictor (paper Eq. 3).
func (r EpochRecord) Lossy() bool { return r.PreLoss > 0 }

// Trace is one contiguous measurement session on one path.
type Trace struct {
	Path    string        `json:"path"`
	Class   string        `json:"class"`
	Index   int           `json:"index"`
	Records []EpochRecord `json:"records"`
}

// Throughputs returns the trace's large-window throughput series (bps).
func (t Trace) Throughputs() []float64 {
	out := make([]float64, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.Throughput
	}
	return out
}

// SmallThroughputs returns the window-limited throughput series (bps).
func (t Trace) SmallThroughputs() []float64 {
	out := make([]float64, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.SmallThroughput
	}
	return out
}

// Dataset is a full measurement campaign: all traces over all paths.
type Dataset struct {
	Label  string  `json:"label"`
	Traces []Trace `json:"traces"`
}

// PathNames returns the distinct path names in catalog order of first
// appearance.
func (ds *Dataset) PathNames() []string {
	seen := make(map[string]bool)
	var names []string
	for _, t := range ds.Traces {
		if !seen[t.Path] {
			seen[t.Path] = true
			names = append(names, t.Path)
		}
	}
	return names
}

// TracesForPath returns all traces collected on the named path.
func (ds *Dataset) TracesForPath(path string) []Trace {
	var out []Trace
	for _, t := range ds.Traces {
		if t.Path == path {
			out = append(out, t)
		}
	}
	return out
}

// AllRecords flattens every epoch record in the dataset.
func (ds *Dataset) AllRecords() []EpochRecord {
	var out []EpochRecord
	for _, t := range ds.Traces {
		out = append(out, t.Records...)
	}
	return out
}

// Epochs returns the total number of epochs in the dataset.
func (ds *Dataset) Epochs() int {
	n := 0
	for _, t := range ds.Traces {
		n += len(t.Records)
	}
	return n
}
