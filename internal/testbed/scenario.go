package testbed

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// LinkType labels the bottleneck regime of a scenario path. The paper's
// catalog is all droptail/RED queues in front of fixed pipes; the
// scenario matrix adds the regimes that stress the predictors in
// qualitatively different ways.
type LinkType string

// Link types of the scenario matrix.
const (
	// LinkDroptail is the paper's regime: a fixed-capacity droptail
	// bottleneck with open-loop cross traffic — congestive loss coupled
	// to queue state.
	LinkDroptail LinkType = "droptail"
	// LinkRandomDrop is an i.i.d. per-packet drop process independent of
	// queue state (noisy line, policer): the cleanest substrate for
	// formula-based prediction, since p̂ measured by probes is exactly
	// the p the transfer will see.
	LinkRandomDrop LinkType = "randomdrop"
	// LinkCellular is a variable-rate bottleneck driven by a
	// RateSchedule trajectory (fading/scheduler-share dynamics): the
	// capacity itself moves, so loss-based formulas chase a moving
	// target.
	LinkCellular LinkType = "cellular"
	// LinkRwndLimited caps the target transfer's advertised window far
	// below the BDP over a lossy link: too few segments in flight for
	// triple-dupack recovery, so the transfer goes timeout-dominated —
	// the regime flip where PFTK's RTO term, not its sqrt(p) term,
	// rules throughput.
	LinkRwndLimited LinkType = "rwnd"
)

// scenario seed stream for sim.DeriveSeed, disjoint from the catalog and
// trace streams in run.go.
const seedStreamScenario = 0xCA7A106<<32 | 3

// DefaultSenders is the sender axis of the scenario matrix.
func DefaultSenders() []tcpsim.Congestion {
	return []tcpsim.Congestion{tcpsim.CCReno, tcpsim.CCCubic, tcpsim.CCBBR}
}

// DefaultLinks is the link axis of the scenario matrix.
func DefaultLinks() []LinkType {
	return []LinkType{LinkDroptail, LinkRandomDrop, LinkCellular, LinkRwndLimited}
}

// ScenarioConfig controls ScenarioCatalog generation.
type ScenarioConfig struct {
	Seed             int64
	Senders          []tcpsim.Congestion // default: reno, cubic, bbr
	Links            []LinkType          // default: all four link types
	PathsPerScenario int                 // paths per (sender × link) cell (default 1)
	Horizon          float64             // trace duration for load/rate trajectories
}

func (c ScenarioConfig) defaults() ScenarioConfig {
	if len(c.Senders) == 0 {
		c.Senders = DefaultSenders()
	}
	if len(c.Links) == 0 {
		c.Links = DefaultLinks()
	}
	if c.PathsPerScenario == 0 {
		c.PathsPerScenario = 1
	}
	if c.Horizon == 0 {
		c.Horizon = 6 * 3600
	}
	return c
}

// ScenarioCatalog generates the (sender × link) scenario matrix as a path
// list for RunConfig.Paths. The path substrate is keyed by (link, index)
// only — every sender runs over byte-identical topology, loss process and
// rate trajectory — so cross-sender comparisons isolate the congestion
// control. Paths are named cc-<sender>-<link>-p<i>.
func ScenarioCatalog(cfg ScenarioConfig) []PathConfig {
	cfg = cfg.defaults()
	out := make([]PathConfig, 0, len(cfg.Senders)*len(cfg.Links)*cfg.PathsPerScenario)
	for li, link := range cfg.Links {
		for i := 0; i < cfg.PathsPerScenario; i++ {
			// One RNG per (link, instance): identical across senders.
			stream := seedStreamScenario ^ uint64(li+1)<<8 ^ uint64(i)
			base := scenarioPath(sim.NewRNG(sim.DeriveSeed(cfg.Seed, stream)), link, i, cfg.Horizon)
			for _, cc := range cfg.Senders {
				pc := base
				pc.Name = fmt.Sprintf("cc-%s-%s-p%d", cc, link, i)
				pc.CC = cc
				out = append(out, pc)
			}
		}
	}
	return out
}

// scenarioPath draws one path substrate for a link type. All regimes use
// the catalog's three-hop shape (fast access, bottleneck, fast egress) so
// differences between cells come from the bottleneck discipline alone.
func scenarioPath(rng *sim.RNG, link LinkType, idx int, horizon float64) PathConfig {
	capBps := rng.Uniform(4e6, 16e6)
	rtt := rng.Uniform(0.02, 0.12)
	bdp := capBps * rtt / 8

	hop := netem.Hop{CapacityBps: capBps}
	pc := PathConfig{
		Class:    ClassUS,
		LinkType: link,
		// Stationary ambient load: the scenario matrix isolates the
		// sender × bottleneck interaction, so trace-scale load shifts
		// stay off.
		LoadCfg: stationaryLoad(horizon),
	}

	switch link {
	case LinkDroptail:
		// The paper's regime: droptail buffer around one BDP, moderate
		// open-loop cross traffic providing the loss process.
		hop.BufferBytes = clampBytes(bdp*rng.Uniform(0.6, 1.4), 30*1500)
		pc.BaseUtilization = rng.Uniform(0.3, 0.6)
		pc.ParetoShare = rng.Uniform(0.2, 0.6)
	case LinkRandomDrop:
		// Clean, overprovisioned queue; i.i.d. drops are the only loss.
		hop.BufferBytes = clampBytes(bdp*3, 60*1500)
		hop.LossProb = rng.Uniform(0.003, 0.02)
	case LinkCellular:
		// Variable-rate pipe: nominal capacity scaled by a piecewise-
		// constant trajectory. Buffer sized for the nominal rate, so deep
		// fades build real queues (the bufferbloat-style RTT swings that
		// make cellular throughput hard to predict).
		hop.BufferBytes = clampBytes(bdp*rng.Uniform(1.0, 2.0), 40*1500)
		hop.Rate = GenerateRateSchedule(rng.Fork(), horizon)
	case LinkRwndLimited:
		// Lossy line plus a tiny advertised window on the target
		// transfer: 3-6 segments in flight cannot produce three duplicate
		// ACKs, so recovery is RTO-driven.
		hop.BufferBytes = clampBytes(bdp, 30*1500)
		hop.LossProb = rng.Uniform(0.008, 0.025)
		if rng.Bool(0.5) {
			pc.TargetWindowBytes = 4 << 10
		} else {
			pc.TargetWindowBytes = 8 << 10
		}
	default:
		panic("testbed: unknown link type " + string(link))
	}

	d1, d2, d3 := rtt*0.1/2, rtt*0.7/2, rtt*0.2/2
	access := capBps * rng.Uniform(4, 8)
	egress := capBps * rng.Uniform(4, 8)
	bigBuf := 4 * 1024 * 1024
	bottleneck := hop
	bottleneck.PropDelay = d2
	pc.Spec = netem.PathSpec{
		Forward: []netem.Hop{
			{CapacityBps: access, PropDelay: d1, BufferBytes: bigBuf},
			bottleneck,
			{CapacityBps: egress, PropDelay: d3, BufferBytes: bigBuf},
		},
		Reverse: []netem.Hop{
			{CapacityBps: egress, PropDelay: d3, BufferBytes: bigBuf},
			{CapacityBps: access * 4, PropDelay: d2, BufferBytes: bigBuf},
			{CapacityBps: access, PropDelay: d1, BufferBytes: bigBuf},
		},
	}
	return pc
}

// stationaryLoad returns a load process configuration with shifts and
// bursts pushed beyond the horizon: a flat multiplier of 1.
func stationaryLoad(horizon float64) netem.LoadConfig {
	cfg := netem.DefaultLoadConfig(horizon)
	cfg.ShiftMeanInterval = horizon * 10
	cfg.BurstMeanInterval = horizon * 10
	cfg.TrendProb = 0
	return cfg
}

// clampBytes floors a float byte count at min and returns it as int.
func clampBytes(v float64, min int) int {
	n := int(v)
	if n < min {
		n = min
	}
	return n
}

// Rate-trajectory generation parameters: a small Markov chain over
// capacity tiers with exponential dwell times — deep fades are visited
// but the link spends most time near nominal, like an LTE scheduler
// share seen by one subscriber.
var rateTiers = []float64{1.0, 0.75, 0.5, 0.3, 0.15}

// GenerateRateSchedule draws a piecewise-constant capacity trajectory
// covering [0, horizon]. Deterministic in rng; tier transitions step at
// most one tier at a time so the trajectory is bursty but not teleporting.
func GenerateRateSchedule(rng *sim.RNG, horizon float64) *netem.RateSchedule {
	sched := &netem.RateSchedule{}
	tier := 0
	t := 0.0
	for t < horizon {
		// Dwell in the current tier 1-8 s (longer near nominal).
		mean := 2.0 + 4.0*rateTiers[tier]
		dwell := rng.Exp(mean)
		if dwell < 0.5 {
			dwell = 0.5
		}
		t += dwell
		// Random walk over tiers, biased back toward nominal.
		switch {
		case tier == 0:
			tier = 1
		case tier == len(rateTiers)-1:
			tier--
		case rng.Bool(0.6):
			tier--
		default:
			tier++
		}
		sched.Steps = append(sched.Steps, netem.RateStep{T: t, Mult: rateTiers[tier]})
	}
	return sched
}

// ScenarioScaled returns a RunConfig for the scenario matrix campaign at
// CI-friendly scale: phase durations as in DefaultScaled, the generated
// catalog replaced by the scenario paths.
func ScenarioScaled(seed int64, scfg ScenarioConfig) RunConfig {
	cfg := DefaultScaled(seed)
	scfg.Seed = sim.DeriveSeed(seed, seedStreamScenario)
	if scfg.Horizon == 0 {
		// Match the horizon defaults() will compute for the run, so rate
		// trajectories cover every epoch.
		perEpoch := 25 + cfg.PingDuration + cfg.TransferSec + cfg.EpochGap
		if cfg.SmallWindowBytes > 0 {
			perEpoch += cfg.SmallTransferSec + 2
		}
		epochs := cfg.EpochsPerTrace
		scfg.Horizon = perEpoch*float64(epochs) + 600
	}
	cfg.Paths = ScenarioCatalog(scfg)
	return cfg
}
