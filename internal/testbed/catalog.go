// Package testbed stands in for the RON testbed of the paper: a catalog of
// simulated Internet paths with diverse capacities, RTTs, buffers and cross
// traffic, plus the measurement-epoch machinery of the paper's Fig. 1
// (pathload avail-bw estimate → 60 s ping → 50 s bulk transfer, with ping
// continuing through the transfer, followed by a window-limited transfer).
package testbed

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// PathClass labels where a simulated path "is", mirroring the composition
// of the paper's path set.
type PathClass string

// Path classes.
const (
	ClassDSL           PathClass = "dsl"
	ClassUS            PathClass = "us"
	ClassTransatlantic PathClass = "transatlantic"
	ClassKorea         PathClass = "korea"
)

// PathConfig fully describes one testbed path and its ambient traffic.
type PathConfig struct {
	Name  string
	Class PathClass
	Spec  netem.PathSpec

	// Cross traffic at the bottleneck.
	BaseUtilization float64 // average open-loop load as a fraction of capacity
	ParetoShare     float64 // fraction of open-loop load from the Pareto source
	ElasticFlows    int     // persistent TCP cross flows
	ElasticRTTs     []float64
	LoadCfg         netem.LoadConfig // trace-scale load variation

	// Scenario-matrix extensions (see scenario.go). Zero values give the
	// paper's behavior: a Reno sender over a droptail path at the
	// campaign's large window.
	CC                tcpsim.Congestion // congestion control of the target transfer
	LinkType          LinkType          // bottleneck regime label, recorded per epoch
	TargetWindowBytes int               // per-path override of the target transfer's window
}

// BottleneckBps returns the configured bottleneck capacity.
func (pc PathConfig) BottleneckBps() float64 {
	min := pc.Spec.Forward[0].CapacityBps
	for _, h := range pc.Spec.Forward[1:] {
		if h.CapacityBps < min {
			min = h.CapacityBps
		}
	}
	return min
}

// CatalogConfig controls catalog generation.
type CatalogConfig struct {
	Seed      int64
	NumPaths  int     // total paths (default 35)
	NumDSL    int     // DSL-bottleneck paths among them (default 7)
	NumTrans  int     // transatlantic paths (default 5)
	NumKorea  int     // Korea paths (default 1)
	MaxCapBps float64 // cap on generated capacities (default 100 Mbps)
	MinCapBps float64 // floor on non-DSL capacities (default 10 Mbps)
	Horizon   float64 // trace duration for the load process, seconds
}

func (c CatalogConfig) defaults() CatalogConfig {
	if c.NumPaths == 0 {
		c.NumPaths = 35
	}
	if c.NumDSL == 0 && c.NumPaths >= 10 {
		c.NumDSL = 7
	}
	if c.NumTrans == 0 && c.NumPaths >= 10 {
		c.NumTrans = 5
	}
	if c.NumKorea == 0 && c.NumPaths >= 10 {
		c.NumKorea = 1
	}
	if c.MaxCapBps == 0 {
		c.MaxCapBps = 100e6
	}
	if c.MinCapBps == 0 {
		c.MinCapBps = 10e6
	}
	if c.Horizon == 0 {
		c.Horizon = 6 * 3600
	}
	return c
}

// Catalog generates a deterministic set of path configurations mirroring
// the May-2004 measurement set: NumDSL DSL-bottlenecked paths, NumTrans
// transatlantic, NumKorea via Korea, and the remainder US
// university-to-university.
func Catalog(cfg CatalogConfig) []PathConfig {
	cfg = cfg.defaults()
	rng := sim.NewRNG(cfg.Seed)
	paths := make([]PathConfig, 0, cfg.NumPaths)
	for i := 0; i < cfg.NumPaths; i++ {
		var class PathClass
		switch {
		case i < cfg.NumDSL:
			class = ClassDSL
		case i < cfg.NumDSL+cfg.NumTrans:
			class = ClassTransatlantic
		case i < cfg.NumDSL+cfg.NumTrans+cfg.NumKorea:
			class = ClassKorea
		default:
			class = ClassUS
		}
		paths = append(paths, generatePath(rng.Fork(), fmt.Sprintf("path%02d-%s", i, class), class, cfg))
	}
	return paths
}

func generatePath(rng *sim.RNG, name string, class PathClass, cfg CatalogConfig) PathConfig {
	var capBps, rtt float64
	// A standing (non-congestive) loss process on a sizeable fraction of
	// paths: lossy access links, noisy last miles, under-provisioned
	// peerings. These are the paths where periodic probing measures
	// p̂ > 0 and the FB predictor takes the PFTK branch — 56% of the
	// paper's predictions did.
	randomLoss := 0.0
	if rng.Bool(0.15) {
		randomLoss = rng.Uniform(5e-4, 3e-3)
	}
	switch class {
	case ClassDSL:
		capBps = rng.Uniform(0.7e6, 1.6e6)
		rtt = rng.Uniform(0.02, 0.07)
	case ClassTransatlantic:
		capBps = rng.Uniform(cfg.MinCapBps, cfg.MaxCapBps*0.5)
		rtt = rng.Uniform(0.09, 0.16)
	case ClassKorea:
		capBps = rng.Uniform(cfg.MinCapBps, cfg.MinCapBps*2)
		rtt = rng.Uniform(0.18, 0.26)
	default: // US
		capBps = rng.Uniform(cfg.MinCapBps, cfg.MaxCapBps)
		rtt = rng.Uniform(0.01, 0.09)
	}

	// Bottleneck buffering: university/backbone links hold 0.5-1.5
	// bandwidth-delay products; DSL modems of the era were overbuffered
	// (hundreds of ms to seconds). Small buffers cause the
	// under-utilization of §3.4, large ones the RTT inflation of §3.2.
	var buf, bufPkts int
	red := false
	if class == ClassDSL {
		// DSL modems: moderate packet buffers (50-300 ms). The paper's
		// RTT scatter (Fig. 10) tops out around 350 ms, so its DSL paths
		// were not multi-second-bufferbloated.
		bufPkts = int(capBps * rng.Uniform(0.05, 0.3) / 8 / 1500)
		if bufPkts < 8 {
			bufPkts = 8
		}
		buf = bufPkts * 1500
	} else {
		// Most router bottlenecks carry thousands of flows; their
		// aggregate drop process is far smoother than a single-flow
		// droptail sawtooth. Model that with RED on most of them.
		red = rng.Bool(0.7)
		// Router bottlenecks: packet-count buffers, so small probe
		// packets drop as readily as data packets during congestion.
		// RED routers are provisioned with more buffer, which the AQM
		// keeps mostly empty.
		bdp := capBps * rtt / 8
		lo, hi, min := 0.5, 1.5, 30
		if red {
			lo, hi, min = 1.0, 2.5, 60
		}
		bufPkts = int(bdp * rng.Uniform(lo, hi) / 1500)
		if bufPkts < min {
			bufPkts = min
		}
		buf = bufPkts * 1500
	}

	// Three-hop forward topology: access link, bottleneck, egress. Access
	// and egress run at ≥4× the bottleneck so only one queue dominates.
	access := capBps * rng.Uniform(4, 10)
	egress := capBps * rng.Uniform(4, 10)
	// Split the propagation delay across hops; reverse path symmetrical.
	d1, d2, d3 := rtt*0.1/2, rtt*0.7/2, rtt*0.2/2
	bigBuf := 4 * 1024 * 1024
	spec := netem.PathSpec{
		Name: name,
		Forward: []netem.Hop{
			{CapacityBps: access, PropDelay: d1, BufferBytes: bigBuf},
			{CapacityBps: capBps, PropDelay: d2, BufferBytes: buf, BufferPackets: bufPkts, LossProb: randomLoss, RED: red},
			{CapacityBps: egress, PropDelay: d3, BufferBytes: bigBuf},
		},
		Reverse: []netem.Hop{
			{CapacityBps: egress, PropDelay: d3, BufferBytes: bigBuf},
			{CapacityBps: access * 4, PropDelay: d2, BufferBytes: bigBuf},
			{CapacityBps: access, PropDelay: d1, BufferBytes: bigBuf},
		},
	}

	// Elastic (persistent TCP) cross traffic: real bottlenecks multiplex
	// many adaptive flows, so a new 1 MB-window transfer only captures a
	// share of the capacity rather than everything beyond the avail-bw.
	elastic := 0
	var elasticRTTs []float64
	if class != ClassDSL && rng.Bool(0.6) {
		elastic = 2 + rng.Intn(8)
		for j := 0; j < elastic; j++ {
			elasticRTTs = append(elasticRTTs, rng.Uniform(0.02, 0.25))
		}
	} else if class == ClassDSL && rng.Bool(0.4) {
		elastic = 1 + rng.Intn(2)
		for j := 0; j < elastic; j++ {
			elasticRTTs = append(elasticRTTs, rng.Uniform(0.02, 0.25))
		}
	}

	// Ambient open-loop load: mostly light-to-moderate paths, a tail of
	// congested ones (the paper's ~10 "hard" paths with pre-existing
	// congestion). Paths that already carry elastic flows get lighter
	// open-loop load so the total offered load stays plausible.
	var util float64
	switch {
	case elastic > 0:
		util = rng.Uniform(0.15, 0.5)
	case rng.Bool(0.4):
		// Congested paths, including a heavily congested tail where the
		// bottleneck runs at 85-97% before the target flow even starts —
		// the paper's ~10 "hard" paths, where FB overestimates worst:
		// ping sees a small standing loss rate, so the PFTK branch
		// predicts far more than the path can actually deliver.
		if rng.Bool(0.5) {
			util = rng.Uniform(0.8, 0.92)
		} else {
			util = rng.Uniform(0.6, 0.8)
		}
	default:
		util = rng.Uniform(0.05, 0.5)
	}

	loadCfg := netem.DefaultLoadConfig(cfg.Horizon)
	// The offered open-loop load must stay bounded near the capacity, or
	// the path starves everything for minutes at a time — something real
	// WAN paths do not do. Cap the multiplier so util×level ≤ ~1.05.
	if util > 0 {
		if cap := 0.95 / util; cap < loadCfg.MaxLevel {
			loadCfg.MaxLevel = cap
		}
	}
	// Vary the pathology intensity across paths so some are stationary
	// ("predictable") and others shift often ("unpredictable"), as in the
	// paper's Fig. 21 path classes.
	loadCfg.ShiftMeanInterval *= rng.Uniform(0.5, 3)
	loadCfg.BurstMeanInterval *= rng.Uniform(0.5, 3)
	if rng.Bool(0.25) {
		// A quarter of the paths are essentially stationary.
		loadCfg.ShiftMeanInterval = cfg.Horizon * 10
		loadCfg.BurstMeanInterval = cfg.Horizon * 10
		loadCfg.TrendProb = 0
	}

	return PathConfig{
		Name:            name,
		Class:           class,
		Spec:            spec,
		BaseUtilization: util,
		ParetoShare:     rng.Uniform(0.2, 0.7),
		ElasticFlows:    elastic,
		ElasticRTTs:     elasticRTTs,
		LoadCfg:         loadCfg,
	}
}
