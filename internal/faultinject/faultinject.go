// Package faultinject provides deterministic, seedable fault injection for
// resilience testing: error returns, latency injection, and data corruption
// at named call sites.
//
// A caller threads a *Injector (nil means "no faults, zero cost") into the
// code under test and names each failure-prone seam with a site string,
// e.g. "snapshot.write" or "handler.panic". Rules attach to sites and
// decide per call whether a fault fires — either on a fixed cadence
// (Every) or with a seeded pseudo-random probability. Because every
// probabilistic rule owns its own RNG stream derived from (seed, site,
// rule index), a fixed number of calls to a site always produces the same
// number of fires, independent of goroutine interleaving: chaos runs are
// reproducible in aggregate, which is what digest-style determinism checks
// need.
//
// The package has no dependencies beyond the standard library and is safe
// for concurrent use.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the default error a firing rule returns from Check.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule describes when and how faults fire at one site.
type Rule struct {
	// Site names the seam the rule attaches to.
	Site string
	// Every fires on every Every-th eligible call (1 = every call).
	// When zero, Probability governs firing instead.
	Every int
	// Probability of firing per eligible call, used when Every == 0.
	// Draws come from a per-rule seeded RNG, so N calls always see the
	// same number of fires regardless of call interleaving.
	Probability float64
	// After exempts the first After calls to the site from this rule.
	After int
	// Times caps the total number of fires (0 = unlimited).
	Times int
	// Err is what Check returns when the rule fires. Nil means
	// ErrInjected — unless the rule carries a Delay, in which case a nil
	// Err makes it a pure slowdown (Check sleeps and returns nil).
	Err error
	// Delay is slept (outside the injector's lock) when the rule fires.
	Delay time.Duration
}

// SiteStats reports one site's call/fire counters.
type SiteStats struct {
	Calls uint64 `json:"calls"`
	Fires uint64 `json:"fires"`
}

// Injector evaluates rules at named sites. The zero value and the nil
// pointer both inject nothing; construct firing injectors with New.
type Injector struct {
	mu    sync.Mutex
	sites map[string][]*ruleState
	calls map[string]uint64
}

type ruleState struct {
	rule  Rule
	rng   *splitmixRNG
	calls uint64
	fires uint64
}

// New builds an injector firing the given rules, with all probabilistic
// draws derived deterministically from seed.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		sites: make(map[string][]*ruleState),
		calls: make(map[string]uint64),
	}
	for i, r := range rules {
		h := fnv.New64a()
		h.Write([]byte(r.Site))
		rs := &ruleState{
			rule: r,
			rng:  newSplitmixRNG(uint64(seed) ^ h.Sum64() ^ (uint64(i)+1)<<32),
		}
		in.sites[r.Site] = append(in.sites[r.Site], rs)
	}
	return in
}

// Check evaluates site's rules in order: each firing rule contributes its
// Delay (slept after the lock is released) and the first firing rule with
// an effective error decides the return value. A nil receiver, an unknown
// site, and a call on which no rule fires all return nil immediately.
func (in *Injector) Check(site string) error {
	if in == nil {
		return nil
	}
	var delay time.Duration
	var err error
	in.mu.Lock()
	in.calls[site]++
	for _, rs := range in.sites[site] {
		if !rs.fire() {
			continue
		}
		delay += rs.rule.Delay
		if err == nil {
			err = rs.effectiveErr()
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Mutate passes data through site's rules: when one fires, a copy of data
// with one deterministically chosen byte flipped is returned (the original
// slice is never modified). With a nil receiver, no matching rule, or no
// fire, data is returned unchanged.
func (in *Injector) Mutate(site string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	fired := false
	in.mu.Lock()
	in.calls[site]++
	for _, rs := range in.sites[site] {
		if rs.fire() {
			fired = true
		}
	}
	in.mu.Unlock()
	if !fired {
		return data
	}
	out := append([]byte(nil), data...)
	out[len(out)/2] ^= 0xFF
	return out
}

// Fires returns the total number of fires recorded at site.
func (in *Injector) Fires(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, rs := range in.sites[site] {
		n += rs.fires
	}
	return n
}

// Calls returns the number of Check/Mutate evaluations recorded at site.
func (in *Injector) Calls(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Stats returns per-site counters for every site that has rules or has
// been evaluated, keyed by site name.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats)
	for site, calls := range in.calls {
		out[site] = SiteStats{Calls: calls}
	}
	for site, rules := range in.sites {
		st := out[site]
		for _, rs := range rules {
			st.Fires += rs.fires
		}
		out[site] = st
	}
	return out
}

// String summarizes the injector's activity, sites in sorted order.
func (in *Injector) String() string {
	if in == nil {
		return "faultinject: disabled"
	}
	stats := in.Stats()
	names := make([]string, 0, len(stats))
	for s := range stats {
		names = append(names, s)
	}
	sort.Strings(names)
	out := "faultinject:"
	for _, s := range names {
		out += fmt.Sprintf(" %s=%d/%d", s, stats[s].Fires, stats[s].Calls)
	}
	return out
}

// fire records one eligible-call evaluation under the injector lock and
// reports whether the rule fires on it.
func (rs *ruleState) fire() bool {
	rs.calls++
	if rs.calls <= uint64(rs.rule.After) {
		return false
	}
	if rs.rule.Times > 0 && rs.fires >= uint64(rs.rule.Times) {
		return false
	}
	hit := false
	switch {
	case rs.rule.Every > 0:
		hit = (rs.calls-uint64(rs.rule.After))%uint64(rs.rule.Every) == 0
	case rs.rule.Probability > 0:
		hit = rs.rng.float64() < rs.rule.Probability
	}
	if hit {
		rs.fires++
	}
	return hit
}

func (rs *ruleState) effectiveErr() error {
	if rs.rule.Err != nil {
		return rs.rule.Err
	}
	if rs.rule.Delay > 0 {
		return nil // pure slowdown
	}
	return ErrInjected
}

// splitmixRNG is a tiny self-contained SplitMix64 generator: enough for
// fault-probability draws without dragging in math/rand state.
type splitmixRNG struct{ state uint64 }

func newSplitmixRNG(seed uint64) *splitmixRNG { return &splitmixRNG{state: seed} }

func (g *splitmixRNG) next() uint64 {
	g.state += 0x9E3779B97F4A7C15
	x := g.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// float64 returns a uniform sample in [0, 1).
func (g *splitmixRNG) float64() float64 {
	return float64(g.next()>>11) / (1 << 53)
}
