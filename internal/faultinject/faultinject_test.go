package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check("anything"); err != nil {
		t.Errorf("nil injector Check = %v, want nil", err)
	}
	data := []byte("payload")
	if got := in.Mutate("anything", data); string(got) != "payload" {
		t.Errorf("nil injector Mutate changed data: %q", got)
	}
	if in.Fires("x") != 0 || in.Calls("x") != 0 || in.Stats() != nil {
		t.Error("nil injector reported activity")
	}
}

func TestEveryCadence(t *testing.T) {
	in := New(1, Rule{Site: "s", Every: 3})
	var fires int
	for i := 0; i < 9; i++ {
		if in.Check("s") != nil {
			fires++
		}
	}
	if fires != 3 {
		t.Errorf("Every:3 over 9 calls fired %d times, want 3", fires)
	}
	if in.Fires("s") != 3 || in.Calls("s") != 9 {
		t.Errorf("counters: fires %d calls %d, want 3/9", in.Fires("s"), in.Calls("s"))
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := New(1, Rule{Site: "s", Every: 1, After: 2, Times: 3})
	var pattern []bool
	for i := 0; i < 8; i++ {
		pattern = append(pattern, in.Check("s") != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
}

func TestProbabilityDeterministicInAggregate(t *testing.T) {
	run := func() uint64 {
		in := New(42, Rule{Site: "s", Probability: 0.3})
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 250; i++ {
					in.Check("s")
				}
			}()
		}
		wg.Wait()
		return in.Fires("s")
	}
	f1, f2 := run(), run()
	if f1 != f2 {
		t.Errorf("fire counts differ across identical runs: %d vs %d", f1, f2)
	}
	// 2000 draws at p=0.3: expect ~600; a loose sanity band catches a
	// broken RNG without flaking.
	if f1 < 400 || f1 > 800 {
		t.Errorf("fires = %d over 2000 draws at p=0.3, outside sanity band", f1)
	}
}

func TestCustomErrorAndPureDelay(t *testing.T) {
	sentinel := errors.New("boom")
	in := New(1,
		Rule{Site: "err", Every: 1, Err: sentinel},
		Rule{Site: "slow", Every: 1, Delay: 5 * time.Millisecond},
	)
	if err := in.Check("err"); !errors.Is(err, sentinel) {
		t.Errorf("Check(err) = %v, want sentinel", err)
	}
	start := time.Now()
	if err := in.Check("slow"); err != nil {
		t.Errorf("pure-delay rule returned error %v, want nil", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("pure-delay rule slept %v, want >= 5ms", d)
	}
	if err := in.Check("unknown-site"); err != nil {
		t.Errorf("unknown site returned %v, want nil", err)
	}
}

func TestDefaultErrIsErrInjected(t *testing.T) {
	in := New(1, Rule{Site: "s", Every: 1})
	if err := in.Check("s"); !errors.Is(err, ErrInjected) {
		t.Errorf("Check = %v, want ErrInjected", err)
	}
}

func TestMutateFlipsOneByteOnCopy(t *testing.T) {
	in := New(1, Rule{Site: "data", Every: 2})
	orig := []byte("abcdefghij")
	if got := in.Mutate("data", orig); string(got) != "abcdefghij" {
		t.Errorf("first call (no fire) changed data: %q", got)
	}
	got := in.Mutate("data", orig)
	if string(orig) != "abcdefghij" {
		t.Errorf("Mutate modified the original slice: %q", orig)
	}
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("fired Mutate changed %d bytes, want exactly 1 (%q)", diff, got)
	}
}

func TestStatsAndString(t *testing.T) {
	in := New(1, Rule{Site: "a", Every: 1}, Rule{Site: "b", Every: 2})
	in.Check("a")
	in.Check("b")
	in.Check("b")
	st := in.Stats()
	if st["a"].Fires != 1 || st["a"].Calls != 1 || st["b"].Fires != 1 || st["b"].Calls != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if s := in.String(); s == "" {
		t.Error("empty String()")
	}
}
