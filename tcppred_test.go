package tcppred_test

import (
	"math"
	"strings"
	"testing"

	tcppred "repro"
)

func demoSpec(capBps, rtt float64) tcppred.PathSpec {
	buf := int(capBps * rtt / 8)
	if buf < 24*1500 {
		buf = 24 * 1500
	}
	return tcppred.PathSpec{
		Name: "api-test",
		Forward: []tcppred.Hop{
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: rtt / 4, BufferBytes: buf},
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
		},
	}
}

func TestPublicAPIPredictionCycle(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(10e6, 0.06), 0.3, 42)
	m := path.Measure(15)
	if m.RTT <= 0 {
		t.Fatal("no RTT measured")
	}
	if m.AvailBw <= 0 {
		t.Fatal("no avail-bw estimate")
	}
	fb := tcppred.NewFBPredictor(tcppred.FBConfig{Model: tcppred.PFTK})
	pred := fb.Predict(m.FBInputs())
	actual := path.Transfer(15, 1<<20)
	if actual <= 0 {
		t.Fatal("transfer failed")
	}
	ratio := pred / actual
	t.Logf("measured T̂=%.1fms p̂=%.4f Â=%.2fMbps → pred %.2f vs actual %.2f Mbps",
		m.RTT*1e3, m.LossRate, m.AvailBw/1e6, pred/1e6, actual/1e6)
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("FB prediction off by %.1fx", ratio)
	}
}

func TestPublicAPIHBWorkflow(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(8e6, 0.05), 0.3, 7)
	hb := tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2))
	var lastErr float64
	for i := 0; i < 6; i++ {
		pred, ok := hb.Predict()
		actual := path.Transfer(10, 1<<20)
		if ok {
			lastErr = math.Abs(pred-actual) / actual
		}
		hb.Observe(actual)
		path.Wait(5)
	}
	if lastErr > 0.6 {
		t.Errorf("HB error %.2f after 6 transfers on a steady path", lastErr)
	}
}

func TestPublicAPITransferBytes(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(10e6, 0.04), 0, 3)
	bps, secs := path.TransferBytes(1<<20, 1<<20)
	if bps <= 0 || secs <= 0 {
		t.Fatalf("TransferBytes = %v bps, %v s", bps, secs)
	}
	if secs > 10 {
		t.Errorf("1 MB on idle 10 Mbps path took %.1f s", secs)
	}
}

func TestPublicAPIWindowLimited(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(50e6, 0.08), 0, 5)
	small := path.Transfer(10, 20*1024)
	expect := 20 * 1024 * 8 / 0.08
	if small > expect*1.3 {
		t.Errorf("window-limited transfer %.2f Mbps above W/RTT %.2f", small/1e6, expect/1e6)
	}
}

func TestPublicAPIClockAndString(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(10e6, 0.04), 0, 1)
	before := path.Now()
	path.Wait(3)
	if path.Now()-before != 3 {
		t.Errorf("Wait advanced %v, want 3", path.Now()-before)
	}
	if !strings.Contains(path.String(), "10.0 Mbps") {
		t.Errorf("String() = %q", path.String())
	}
}

func TestPublicAPIPredictorNames(t *testing.T) {
	cases := map[string]tcppred.HBPredictor{
		"10-MA":      tcppred.NewMovingAverage(10),
		"0.8-EWMA":   tcppred.NewEWMA(0.8),
		"0.8-HW":     tcppred.NewHoltWinters(0.8, 0.2),
		"0.8-HW-LSO": tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2)),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestPublicAPIHybridAndAR(t *testing.T) {
	path := tcppred.NewTestbedPath(demoSpec(10e6, 0.05), 0.3, 9)
	hy := tcppred.NewHybrid(tcppred.FBConfig{Model: tcppred.PFTK}, 0)
	ar := tcppred.NewAR(2, 0)
	var lastActual float64
	for i := 0; i < 5; i++ {
		m := path.Measure(10)
		hy.Predict(m.FBInputs())
		actual := path.Transfer(10, 1<<20)
		hy.Observe(actual)
		ar.Observe(actual)
		lastActual = actual
	}
	if hy.Samples() != 5 {
		t.Errorf("hybrid samples = %d", hy.Samples())
	}
	pred, ok := ar.Predict()
	if !ok || pred <= 0 {
		t.Fatalf("AR prediction = %v,%v", pred, ok)
	}
	if pred > lastActual*3 || pred < lastActual/3 {
		t.Errorf("AR prediction %v far from recent throughput %v", pred, lastActual)
	}
}

func TestPublicAPIShortTransferThroughput(t *testing.T) {
	small := tcppred.ShortTransferThroughput(16<<10, 0.08, 0.005, 1<<20)
	big := tcppred.ShortTransferThroughput(64<<20, 0.08, 0.005, 1<<20)
	if small <= 0 || big <= 0 {
		t.Fatalf("throughputs %v, %v", small, big)
	}
	if small >= big {
		t.Errorf("short transfer (%v) should average slower than long (%v)", small, big)
	}
	fb := tcppred.NewFBPredictor(tcppred.FBConfig{Model: tcppred.PFTK})
	bulk := fb.Predict(tcppred.FBInputs{RTT: 0.08, LossRate: 0.005})
	if math.Abs(big-bulk)/bulk > 0.15 {
		t.Errorf("long-transfer model %v should converge to bulk PFTK %v", big, bulk)
	}
}
