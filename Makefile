# Developer entry points. `make check` is what CI runs; `make test` is the
# full (slow) suite including the multi-second campaign tests.

GO ?= go

.PHONY: check lint fmt vet build test race bench loadtest

check:
	./scripts/check.sh

# Static analysis mirroring the CI lint job: gofmt, vet, and — when the
# tools are installed — staticcheck and govulncheck (skipped with a note
# otherwise; CI always installs them).
lint:
	./scripts/lint.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tracked benchmark run: three passes of every benchmark, distilled into
# BENCH_<pr>.json and gated against the previous committed baseline (>25%
# ns/op regression on the hot-path benches fails). `bench-short` is the CI
# variant: hot-path benches only, compare-only.
bench:
	./scripts/bench.sh

bench-short:
	./scripts/bench.sh -short

# Sustained prediction-service load: ≥50k requests against a real daemon,
# twice, asserting zero errors and cross-run digest equality.
loadtest:
	$(GO) test -race -run 'TestSustainedLoad50k' -count=1 -v ./internal/predsvc
