package tcppred_test

import (
	"testing"

	"repro/internal/availbw"
	"repro/internal/experiments"
	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// integrationConfig is sized for CI: ~8 s of wall time, enough epochs for
// the shape assertions below to be stable.
func integrationConfig(seed int64) testbed.RunConfig {
	return testbed.RunConfig{
		Seed: seed,
		Catalog: testbed.CatalogConfig{
			Seed:      seed + 7777,
			NumPaths:  5,
			NumDSL:    1,
			NumTrans:  1,
			MinCapBps: 3e6,
			MaxCapBps: 10e6,
		},
		TracesPerPath:    1,
		EpochsPerTrace:   12,
		PingDuration:     15,
		TransferSec:      12,
		EpochGap:         5,
		SmallWindowBytes: 20 * 1024,
		SmallTransferSec: 8,
		Pathload:         availbw.Config{StreamLength: 60, StreamsPerRate: 1, MaxIterations: 8},
	}
}

// TestEndToEndShapes runs a miniature measurement campaign through the
// full pipeline and asserts the paper's qualitative findings hold.
func TestEndToEndShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	ds := testbed.Collect(integrationConfig(20050822))
	if ds.Epochs() != 5*12 {
		t.Fatalf("epochs = %d", ds.Epochs())
	}

	// Finding 4 (§6.2): with history, HB beats FB. Compare median
	// per-trace RMSRE.
	fb := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK})
	var fbR, hbR []float64
	for _, tr := range ds.Traces {
		var fbE []float64
		for _, rec := range tr.Records {
			pred := fb.Predict(predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw})
			fbE = append(fbE, stats.RelativeError(pred, rec.Throughput))
		}
		fbR = append(fbR, stats.RMSRE(fbE, 50))
		res := predict.Evaluate(
			predict.NewLSO(predict.NewHoltWinters(0.8, 0.2), predict.DefaultLSOConfig()),
			tr.Throughputs())
		hbR = append(hbR, stats.RMSRE(res.Errors, 50))
	}
	fbMed, hbMed := stats.Median(fbR), stats.Median(hbR)
	t.Logf("median per-trace RMSRE: FB %.3f, HB %.3f", fbMed, hbMed)
	if hbMed >= fbMed {
		t.Errorf("HB median RMSRE %.3f not below FB %.3f", hbMed, fbMed)
	}

	// Finding: the RTT measured during the flow exceeds the pre-flow RTT
	// in the typical epoch (self-induced queueing, §3.2).
	increased := 0
	for _, rec := range ds.AllRecords() {
		if rec.DurRTT > rec.PreRTT {
			increased++
		}
	}
	if frac := float64(increased) / float64(ds.Epochs()); frac < 0.6 {
		t.Errorf("RTT increased during the flow in only %.0f%% of epochs", frac*100)
	}

	// Finding 6 (§4.3): window-limited transfers are more predictable
	// (FB side). As in the paper's Fig. 12, only epochs where the small
	// window actually limits the transfer (W/T̂ < Â) qualify.
	var largeE, smallE []float64
	for _, rec := range ds.AllRecords() {
		if !rec.SmallWindowLimited {
			continue
		}
		in := predict.FBInputs{RTT: rec.PreRTT, LossRate: rec.PreLoss, AvailBw: rec.AvailBw}
		fbL := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, MaxWindowBytes: 1 << 20})
		fbS := predict.NewFB(predict.FBConfig{Model: predict.ModelPFTK, MaxWindowBytes: rec.SmallWindowBytes})
		largeE = append(largeE, stats.RelativeError(fbL.Predict(in), rec.Throughput))
		smallE = append(smallE, stats.RelativeError(fbS.Predict(in), rec.SmallThroughput))
	}
	if len(smallE) >= 10 {
		lr, sr := stats.RMSRE(largeE, 50), stats.RMSRE(smallE, 50)
		t.Logf("FB RMSRE over %d window-limited epochs: large-W %.3f, small-W %.3f", len(smallE), lr, sr)
		if sr >= lr {
			t.Errorf("window-limited RMSRE %.3f not below congestion-limited %.3f", sr, lr)
		}
	}

	// The experiment runners must all work on this dataset.
	for _, res := range experiments.All(ds, 1) {
		if len(res.Tables) == 0 {
			t.Errorf("experiment %s produced nothing", res.ID)
		}
	}
}

// TestEndToEndDeterminism re-collects the same campaign and checks a few
// scalar outputs match exactly.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	cfg := integrationConfig(7)
	cfg.Catalog.NumPaths = 2
	cfg.EpochsPerTrace = 4
	a := testbed.Collect(cfg)
	b := testbed.Collect(cfg)
	ra, rb := a.AllRecords(), b.AllRecords()
	if len(ra) != len(rb) {
		t.Fatal("different epoch counts")
	}
	for i := range ra {
		if ra[i].Throughput != rb[i].Throughput || ra[i].PreRTT != rb[i].PreRTT {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}
