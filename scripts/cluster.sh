#!/bin/sh
# cluster.sh — cluster robustness acceptance gates against the real
# binaries (predserverd, predload, predctl). Four gates, one invariant:
# deployment shape and membership churn must never change a predict
# response byte or lose a path.
#
#   1. scale-out: a 4-node cluster (two nodes squeezed to -capacity 4
#      with spill dirs, two default) replaying via `predload -cluster
#      -batch` reproduces the single-node digest, holds disjoint path
#      sets covering the series, and serves balanced per-node QPS.
#
#   2. rolling restart: every node of a 4-node cluster is SIGTERMed and
#      restarted (snapshot restore) while a paced load runs. The drain
#      sequence (/readyz 503 → in-flight finish → final snapshot) plus
#      the client's connection-refused retry loop must ride it out: zero
#      request errors, at least one failover ridden out, digest equal to
#      the single-node run.
#
#   3. resize 2→3 mid-load: phase 1 of the series replays against two
#      nodes, `predctl rebalance` moves ownership onto a third, phase 2
#      replays against all three. Both phase digests must equal a
#      single-node run split at the same epoch, and the three nodes must
#      hold all paths exactly once — zero lost, zero duplicated.
#
#   4. handoff under fire: the resize runs with -chaos-handoff on the
#      exporting and the joining node, killing the first export stream
#      mid-transfer and failing the first import mid-batch. The
#      rebalance must retry and converge — retries visible in its
#      report, state intact per gate 3's checks.
set -eu

cd "$(dirname "$0")/.."

P0="${CLUSTER_PORT:-18455}"     # single-node reference
P1=$((P0 + 1)); P2=$((P0 + 2)); P3=$((P0 + 3)); P4=$((P0 + 4))   # gates 1-2
P5=$((P0 + 5)); P6=$((P0 + 6)); P7=$((P0 + 7))                   # gate 3/4
SEED=7
PATHS=40
EPOCHS=40
BOUNDARY=20

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        if kill -0 "$p" 2>/dev/null; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "==> building binaries"
go build -o "$tmp/predserverd" ./cmd/predserverd
go build -o "$tmp/predload" ./cmd/predload
go build -o "$tmp/predctl" ./cmd/predctl

# wait_ready polls /readyz — the routing-readiness signal, which also
# covers snapshot restore (a restoring daemon answers 503).
wait_ready() {
    i=0
    while [ $i -lt 100 ]; do
        if curl -fsS "http://$1/readyz" >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "daemon on $1 never became ready" >&2
    return 1
}

# stop_node <pid> <log> — SIGTERM and require the clean-shutdown marker.
stop_node() {
    kill -TERM "$1"
    wait "$1" || { echo "daemon did not exit cleanly" >&2; cat "$2" >&2; exit 1; }
    grep -q "shut down cleanly" "$2" || {
        echo "daemon missing clean-shutdown marker" >&2
        cat "$2" >&2
        exit 1
    }
}

digest_of() { grep -o 'digest sha256:[0-9a-f]*' "$1" | head -n1; }
paths_of() { curl -fsS "http://$1/v1/stats?limit=0" | grep -o '"paths":[0-9]*' | head -n1 | cut -d: -f2; }

# --------------------------------------------------------------------
echo "==> reference runs (1 node): full series, then the same series split at epoch $BOUNDARY"
"$tmp/predserverd" -addr "127.0.0.1:$P0" >"$tmp/single.log" 2>&1 &
single_pid=$!
pids="$single_pid"
wait_ready "127.0.0.1:$P0"
"$tmp/predload" -addr "127.0.0.1:$P0" -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" \
    -quantiles >"$tmp/single.out" 2>&1
stop_node "$single_pid" "$tmp/single.log"
pids=""

# The digest chain restarts per run, so the resize gate (two phases, two
# runs) is compared against a single node replaying the same two phases.
# SyntheticSeries is prefix-stable: -epochs $BOUNDARY is byte-identical
# to the first $BOUNDARY epochs of the full series.
"$tmp/predserverd" -addr "127.0.0.1:$P0" >"$tmp/single2.log" 2>&1 &
single_pid=$!
pids="$single_pid"
wait_ready "127.0.0.1:$P0"
"$tmp/predload" -addr "127.0.0.1:$P0" -seed "$SEED" -paths "$PATHS" -epochs "$BOUNDARY" \
    >"$tmp/ref-p1.out" 2>&1
"$tmp/predload" -addr "127.0.0.1:$P0" -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" \
    -start-epoch "$BOUNDARY" >"$tmp/ref-p2.out" 2>&1
stop_node "$single_pid" "$tmp/single2.log"
pids=""

single_digest=$(digest_of "$tmp/single.out")
ref_p1=$(digest_of "$tmp/ref-p1.out")
ref_p2=$(digest_of "$tmp/ref-p2.out")
[ -n "$single_digest" ] || { echo "no digest in reference output" >&2; cat "$tmp/single.out" >&2; exit 1; }
[ -n "$ref_p1" ] && [ -n "$ref_p2" ] || { echo "no digest in phase-split reference" >&2; exit 1; }

# --------------------------------------------------------------------
echo "==> gate 1: 4-node cluster (2 spill-backed + 2 default) reproduces the digest"
"$tmp/predserverd" -addr "127.0.0.1:$P1" -shards 1 -capacity 4 -spill-dir "$tmp/spill-a" >"$tmp/node-a.log" 2>&1 &
a_pid=$!
"$tmp/predserverd" -addr "127.0.0.1:$P2" -shards 1 -capacity 4 -spill-dir "$tmp/spill-b" >"$tmp/node-b.log" 2>&1 &
b_pid=$!
"$tmp/predserverd" -addr "127.0.0.1:$P3" >"$tmp/node-c.log" 2>&1 &
c_pid=$!
"$tmp/predserverd" -addr "127.0.0.1:$P4" >"$tmp/node-d.log" 2>&1 &
d_pid=$!
pids="$a_pid $b_pid $c_pid $d_pid"
for port in $P1 $P2 $P3 $P4; do wait_ready "127.0.0.1:$port"; done

"$tmp/predload" -cluster "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3,127.0.0.1:$P4" -batch \
    -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" -quantiles >"$tmp/cluster4.out" 2>&1

# Disjoint coverage across all four nodes, read while they serve.
total=0
for port in $P1 $P2 $P3 $P4; do
    n=$(paths_of "127.0.0.1:$port")
    echo "    node :$port holds ${n:-0} paths"
    if [ -z "$n" ] || [ "$n" -eq 0 ]; then
        echo "FAIL: a cluster node received no paths — routing is degenerate" >&2
        exit 1
    fi
    total=$((total + n))
done
if [ "$total" -ne "$PATHS" ]; then
    echo "FAIL: nodes hold $total paths together, series has $PATHS — ownership overlaps or leaks" >&2
    exit 1
fi

# Per-node QPS is a checked number: every node must have completed a
# non-trivial share of the load (floor 100 requests of the several
# thousand replayed — a catastrophic-imbalance guard, not a balance
# micro-assert).
for port in $P1 $P2 $P3 $P4; do
    line=$(grep "node http://127.0.0.1:$port:" "$tmp/cluster4.out" || true)
    if [ -z "$line" ]; then
        echo "FAIL: no per-node QPS line for :$port in the load report" >&2
        cat "$tmp/cluster4.out" >&2
        exit 1
    fi
    reqs=$(echo "$line" | grep -o '[0-9]* requests' | cut -d' ' -f1)
    qps=$(echo "$line" | grep -o '[0-9]* req/s' | cut -d' ' -f1)
    echo "    node :$port served $reqs requests at $qps req/s"
    if [ "${reqs:-0}" -lt 100 ] || [ "${qps:-0}" -lt 1 ]; then
        echo "FAIL: node :$port served only ${reqs:-0} requests (${qps:-0} req/s)" >&2
        exit 1
    fi
done

# The capacity squeeze really spilled on the two squeezed nodes.
for port in $P1 $P2; do
    cold=$(curl -fsS "http://127.0.0.1:$port/v1/stats?limit=0" | grep -o '"cold_paths":[0-9]*' | cut -d: -f2)
    if [ "${cold:-0}" -eq 0 ]; then
        echo "FAIL: expected node :$port to spill past -capacity 4" >&2
        exit 1
    fi
done

cluster_digest=$(digest_of "$tmp/cluster4.out")
echo "    1-node  $single_digest"
echo "    4-node  $cluster_digest"
if [ "$single_digest" != "$cluster_digest" ]; then
    echo "FAIL: 4-node run changed the predict digest" >&2
    cat "$tmp/cluster4.out" >&2
    exit 1
fi
grep -q 'coverage' "$tmp/cluster4.out" || {
    echo "FAIL: no interval-coverage report — quantiles missing from predict responses" >&2
    exit 1
}

stop_node "$a_pid" "$tmp/node-a.log"
stop_node "$b_pid" "$tmp/node-b.log"
stop_node "$c_pid" "$tmp/node-c.log"
stop_node "$d_pid" "$tmp/node-d.log"
pids=""

# --------------------------------------------------------------------
echo "==> gate 2: rolling restart of all 4 nodes under paced load"
# Snapshots carry state across the restarts; -drain-delay holds /readyz
# at 503 briefly before the listener closes so probing clients re-route.
for i in 1 2 3 4; do
    eval "port=\$P$i"
    "$tmp/predserverd" -addr "127.0.0.1:$port" -snapshot "$tmp/snap-$i.json" \
        -drain-delay 200ms >"$tmp/roll-$i.log" 2>&1 &
    eval "roll_$i=$!"
    pids="$pids $!"
done
for port in $P1 $P2 $P3 $P4; do wait_ready "127.0.0.1:$port"; done

"$tmp/predload" -cluster "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3,127.0.0.1:$P4" \
    -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" -pace 150ms \
    >"$tmp/rolling.out" 2>&1 &
load_pid=$!

sleep 1
for i in 1 2 3 4; do
    eval "port=\$P$i"
    eval "pid=\$roll_$i"
    stop_node "$pid" "$tmp/roll-$i.log"
    mv "$tmp/roll-$i.log" "$tmp/roll-$i.first.log"
    "$tmp/predserverd" -addr "127.0.0.1:$port" -snapshot "$tmp/snap-$i.json" \
        -drain-delay 200ms >"$tmp/roll-$i.log" 2>&1 &
    eval "roll_$i=$!"
    pids="$pids $!"
    wait_ready "127.0.0.1:$port"
    echo "    node :$port restarted (snapshot restored)"
done

wait "$load_pid" || {
    echo "FAIL: paced load failed across the rolling restart" >&2
    cat "$tmp/rolling.out" >&2
    exit 1
}
rolling_digest=$(digest_of "$tmp/rolling.out")
failovers=$(grep -o '[0-9]* failovers' "$tmp/rolling.out" | cut -d' ' -f1)
echo "    rolling $rolling_digest (failovers ridden out: ${failovers:-0})"
if [ "$rolling_digest" != "$single_digest" ]; then
    echo "FAIL: rolling restart changed the predict digest" >&2
    cat "$tmp/rolling.out" >&2
    exit 1
fi
if [ "${failovers:-0}" -lt 1 ]; then
    echo "FAIL: no failovers recorded — the restarts never intersected the load, gate proves nothing" >&2
    cat "$tmp/rolling.out" >&2
    exit 1
fi
for i in 1 2 3 4; do
    eval "pid=\$roll_$i"
    stop_node "$pid" "$tmp/roll-$i.log"
done
pids=""

# --------------------------------------------------------------------
echo "==> gates 3+4: resize 2 -> 3 mid-load, with the first handoff killed mid-transfer"
# -chaos-handoff on the exporting node A (first export stream aborts
# without a trailer) and on the joining node C (first import 500s
# mid-batch): only predctl's idempotent retry can complete the move.
"$tmp/predserverd" -addr "127.0.0.1:$P5" -chaos-handoff >"$tmp/rs-a.log" 2>&1 &
ra_pid=$!
"$tmp/predserverd" -addr "127.0.0.1:$P6" >"$tmp/rs-b.log" 2>&1 &
rb_pid=$!
pids="$ra_pid $rb_pid"
wait_ready "127.0.0.1:$P5"
wait_ready "127.0.0.1:$P6"

"$tmp/predload" -cluster "127.0.0.1:$P5,127.0.0.1:$P6" \
    -seed "$SEED" -paths "$PATHS" -epochs "$BOUNDARY" >"$tmp/resize-p1.out" 2>&1
p1_digest=$(digest_of "$tmp/resize-p1.out")
echo "    phase-1 ref    $ref_p1"
echo "    phase-1 2-node $p1_digest"
if [ "$p1_digest" != "$ref_p1" ]; then
    echo "FAIL: phase-1 digest diverged before the resize" >&2
    exit 1
fi

"$tmp/predserverd" -addr "127.0.0.1:$P7" -chaos-handoff >"$tmp/rs-c.log" 2>&1 &
rc_pid=$!
pids="$pids $rc_pid"
wait_ready "127.0.0.1:$P7"

"$tmp/predctl" rebalance \
    -from "127.0.0.1:$P5,127.0.0.1:$P6" \
    -to "127.0.0.1:$P5,127.0.0.1:$P6,127.0.0.1:$P7" >"$tmp/rebalance.out" 2>&1 || {
    echo "FAIL: predctl rebalance failed" >&2
    cat "$tmp/rebalance.out" >&2
    exit 1
}
sed 's/^/    /' "$tmp/rebalance.out" | tail -n 3
retries=$(grep -o '[0-9]* retries' "$tmp/rebalance.out" | tail -n1 | cut -d' ' -f1)
if [ "${retries:-0}" -lt 1 ]; then
    echo "FAIL: rebalance reported no retries — the injected mid-transfer kill never fired" >&2
    cat "$tmp/rebalance.out" >&2
    exit 1
fi

# Zero lost paths: the three nodes hold the series exactly once, and the
# joiner actually owns some of it.
total=0
for port in $P5 $P6 $P7; do
    n=$(paths_of "127.0.0.1:$port")
    echo "    node :$port holds ${n:-0} paths"
    total=$((total + ${n:-0}))
done
if [ "$total" -ne "$PATHS" ]; then
    echo "FAIL: $total paths across the resized cluster, series has $PATHS — the handoff lost or duplicated state" >&2
    exit 1
fi
joiner=$(paths_of "127.0.0.1:$P7")
if [ "${joiner:-0}" -eq 0 ]; then
    echo "FAIL: the joining node owns nothing after the rebalance" >&2
    exit 1
fi

"$tmp/predload" -cluster "127.0.0.1:$P5,127.0.0.1:$P6,127.0.0.1:$P7" \
    -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" -start-epoch "$BOUNDARY" \
    >"$tmp/resize-p2.out" 2>&1
p2_digest=$(digest_of "$tmp/resize-p2.out")
echo "    phase-2 ref    $ref_p2"
echo "    phase-2 3-node $p2_digest"
if [ "$p2_digest" != "$ref_p2" ]; then
    echo "FAIL: phase-2 digest diverged after the killed-and-retried resize" >&2
    exit 1
fi

stop_node "$ra_pid" "$tmp/rs-a.log"
stop_node "$rb_pid" "$tmp/rs-b.log"
stop_node "$rc_pid" "$tmp/rs-c.log"
pids=""

echo "OK: 4-node digest equality, rolling restart ridden out, resize 2->3 with killed handoff converged"
