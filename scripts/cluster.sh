#!/bin/sh
# cluster.sh — multi-node routing acceptance gate against the real binaries.
#
# Replays the same synthetic series twice:
#
#   1. against one predserverd with default capacity (the reference run),
#   2. against a 2-node cluster via `predload -cluster -batch`, with each
#      node squeezed to -capacity 16 and a -spill-dir so the two-tier
#      store spills and faults sessions for real,
#
# and asserts:
#
#   a. the predict digests are identical — rendezvous routing, batched
#      ingest and disk spilling must not change a single response byte,
#   b. the cluster nodes hold disjoint path sets that together cover the
#      series (each path lives on exactly one node, no node is idle),
#   c. both nodes spilled to disk (the squeeze was real) and shut down
#      cleanly on SIGTERM.
set -eu

cd "$(dirname "$0")/.."

P0="${CLUSTER_PORT:-18455}"
P1=$((P0 + 1))
P2=$((P0 + 2))
SEED=7
PATHS=40
EPOCHS=40

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do
        if kill -0 "$p" 2>/dev/null; then
            kill "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "==> building binaries"
go build -o "$tmp/predserverd" ./cmd/predserverd
go build -o "$tmp/predload" ./cmd/predload

# wait_ready polls /v1/stats (read-only: must not pollute path state).
wait_ready() {
    i=0
    while [ $i -lt 100 ]; do
        if curl -fsS "http://$1/v1/stats" >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "daemon on $1 never became ready" >&2
    return 1
}

# stop_node <pid> <log> — SIGTERM and require the clean-shutdown marker.
stop_node() {
    kill -TERM "$1"
    wait "$1" || { echo "daemon did not exit cleanly" >&2; cat "$2" >&2; exit 1; }
    grep -q "shut down cleanly" "$2" || {
        echo "daemon missing clean-shutdown marker" >&2
        cat "$2" >&2
        exit 1
    }
}

digest_of() { grep -o 'digest sha256:[0-9a-f]*' "$1" | head -n1; }
paths_of() { curl -fsS "http://$1/v1/stats?limit=0" | grep -o '"paths":[0-9]*' | head -n1 | cut -d: -f2; }

echo "==> reference run (1 node, default store)"
"$tmp/predserverd" -addr "127.0.0.1:$P0" >"$tmp/single.log" 2>&1 &
single_pid=$!
pids="$single_pid"
wait_ready "127.0.0.1:$P0"
"$tmp/predload" -addr "127.0.0.1:$P0" -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" \
    -quantiles >"$tmp/single.out" 2>&1
stop_node "$single_pid" "$tmp/single.log"
pids=""

echo "==> cluster run (2 nodes, spill-backed, batched ingest)"
"$tmp/predserverd" -addr "127.0.0.1:$P1" -capacity 16 -spill-dir "$tmp/spill-a" \
    >"$tmp/node-a.log" 2>&1 &
a_pid=$!
"$tmp/predserverd" -addr "127.0.0.1:$P2" -capacity 16 -spill-dir "$tmp/spill-b" \
    >"$tmp/node-b.log" 2>&1 &
b_pid=$!
pids="$a_pid $b_pid"
wait_ready "127.0.0.1:$P1"
wait_ready "127.0.0.1:$P2"
"$tmp/predload" -cluster "127.0.0.1:$P1,127.0.0.1:$P2" -batch \
    -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" -quantiles >"$tmp/cluster.out" 2>&1

# (b) disjoint coverage, read before shutdown while both nodes serve.
paths_a=$(paths_of "127.0.0.1:$P1")
paths_b=$(paths_of "127.0.0.1:$P2")
echo "    node A holds $paths_a paths, node B holds $paths_b"
if [ -z "$paths_a" ] || [ -z "$paths_b" ] || [ "$paths_a" -eq 0 ] || [ "$paths_b" -eq 0 ]; then
    echo "FAIL: a cluster node received no paths — routing is degenerate" >&2
    exit 1
fi
if [ $((paths_a + paths_b)) -ne "$PATHS" ]; then
    echo "FAIL: nodes hold $((paths_a + paths_b)) paths together, series has $PATHS — ownership overlaps or leaks" >&2
    exit 1
fi

# (c) the capacity squeeze really spilled: cold paths exist on both nodes.
cold_a=$(curl -fsS "http://127.0.0.1:$P1/v1/stats?limit=0" | grep -o '"cold_paths":[0-9]*' | cut -d: -f2)
cold_b=$(curl -fsS "http://127.0.0.1:$P2/v1/stats?limit=0" | grep -o '"cold_paths":[0-9]*' | cut -d: -f2)
echo "    cold paths: node A $cold_a, node B $cold_b"
if [ "${cold_a:-0}" -eq 0 ] || [ "${cold_b:-0}" -eq 0 ]; then
    echo "FAIL: expected both nodes to spill past -capacity 16" >&2
    exit 1
fi

stop_node "$a_pid" "$tmp/node-a.log"
stop_node "$b_pid" "$tmp/node-b.log"
pids=""

# (a) digest equality across deployment shapes. The predict responses
# carry the quantile interval and selected family, so the digest gates
# the full uncertainty surface; -quantiles additionally scores coverage,
# which must be reported (and, being a pure function of the responses,
# identical) in both runs.
for out in "$tmp/single.out" "$tmp/cluster.out"; do
    grep -q 'coverage' "$out" || {
        echo "FAIL: no interval-coverage report in $out — quantiles missing from predict responses" >&2
        cat "$out" >&2
        exit 1
    }
done
single_digest=$(digest_of "$tmp/single.out")
cluster_digest=$(digest_of "$tmp/cluster.out")
[ -n "$single_digest" ] || { echo "no digest in reference output" >&2; cat "$tmp/single.out" >&2; exit 1; }
echo "    1-node  $single_digest"
echo "    2-node  $cluster_digest"
if [ "$single_digest" != "$cluster_digest" ]; then
    echo "FAIL: clustered run changed the predict digest" >&2
    cat "$tmp/cluster.out" >&2
    exit 1
fi

echo "OK: 2-node cluster reproduced the single-node digest with disjoint, spill-backed ownership"
