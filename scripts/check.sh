#!/bin/sh
# check.sh — the CI gate, runnable locally: formatting, vet, build, and the
# race-enabled short test suite. Slow multi-second campaign tests are
# guarded by testing.Short(); run `make test` (or `go test ./...`) for the
# full suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short ./...

# The short suite above already includes these, but run them by name so a
# test-filter or skip regression can't silently drop the end-to-end gates:
# a real daemon on an ephemeral port driven by the load generator, and the
# chaos gate (injected snapshot failures, handler panics, client aborts,
# slowloris probes, load shedding — daemon survives, digest unchanged).
echo "==> prediction-service end-to-end (short)"
go test -race -short -run 'TestEndToEnd' -count=1 ./internal/predsvc

echo "==> prediction-service chaos gate"
go test -race -short -run 'TestEndToEndChaos|TestCorruptSnapshotQuarantine' -count=1 ./internal/predsvc

# Storage/cluster gates: the store conformance suite against every Store
# implementation, and the in-process cluster digest test (scripts/cluster.sh
# is the real-binaries version of the latter).
echo "==> store conformance + cluster digest gate"
go test -race -short -run 'TestStoreConformance' -count=1 ./internal/predsvc/store
go test -race -short -run 'TestClusterReplayDigest|TestSpillBackedServer' -count=1 ./internal/predsvc

# Robustness gates: shard handoff (export/import/drop, last-writer-wins,
# retry after injected mid-transfer kills, 2→3 resize digest equality),
# the drain/health lifecycle, the retrying cluster client, and the
# rendezvous-map churn property (random joins/leaves move only the
# reassigned paths).
echo "==> handoff + drain + cluster-client gates"
go test -race -short -count=1 \
    -run 'TestRebalance|TestImport|TestSessionsDrop|TestResizeMidLoadDigestEquality|TestHealth|TestReadyz|TestServeDrainWindow' \
    ./internal/predsvc
go test -race -short -count=1 \
    -run 'TestChurnOnlyReassignedPathsMove|TestDo|TestWaitReady' \
    ./internal/predsvc/cluster

# The same properties against the real binaries: 4-node digest equality
# over heterogeneous stores, a rolling restart of every node under paced
# load, and a 2→3 resize whose first handoff is killed mid-transfer and
# must converge on retry.
echo "==> cluster robustness gates (real binaries)"
./scripts/cluster.sh

# Scenario-matrix gate: the CC × link smoke campaign (reno/cubic/bbr over
# droptail/randomdrop/cellular/rwnd) collected twice with digest equality,
# then scored by repro's ext-cc — FB must degrade on BBR cells while the
# history-based control group holds.
echo "==> scenario-matrix gate (real binaries)"
./scripts/scenarios.sh

# Coverage ratchet: the short suite's statement coverage may drift, but
# never more than 2 points below the recorded baseline. When a PR raises
# coverage meaningfully, raise COVER_BASELINE to match `go tool cover
# -func` — the ratchet only ever moves up.
COVER_BASELINE=79.1
echo "==> coverage ratchet (baseline ${COVER_BASELINE}%, tolerance -2.0)"
cover_tmp=$(mktemp)
trap 'rm -f "$cover_tmp"' EXIT
go test -short -coverprofile="$cover_tmp" ./... >/dev/null
total=$(go tool cover -func="$cover_tmp" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
echo "    total statement coverage: ${total}%"
if ! awk -v t="$total" -v b="$COVER_BASELINE" 'BEGIN { exit !(t >= b - 2.0) }'; then
    echo "FAIL: coverage ${total}% is more than 2 points below the ${COVER_BASELINE}% baseline" >&2
    exit 1
fi

echo "OK"
