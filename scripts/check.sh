#!/bin/sh
# check.sh — the CI gate, runnable locally: formatting, vet, build, and the
# race-enabled short test suite. Slow multi-second campaign tests are
# guarded by testing.Short(); run `make test` (or `go test ./...`) for the
# full suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short ./...

echo "OK"
