#!/bin/sh
# check.sh — the CI gate, runnable locally: formatting, vet, build, and the
# race-enabled short test suite. Slow multi-second campaign tests are
# guarded by testing.Short(); run `make test` (or `go test ./...`) for the
# full suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short ./...

# The short suite above already includes these, but run them by name so a
# test-filter or skip regression can't silently drop the end-to-end gates:
# a real daemon on an ephemeral port driven by the load generator, and the
# chaos gate (injected snapshot failures, handler panics, client aborts,
# slowloris probes, load shedding — daemon survives, digest unchanged).
echo "==> prediction-service end-to-end (short)"
go test -race -short -run 'TestEndToEnd' -count=1 ./internal/predsvc

echo "==> prediction-service chaos gate"
go test -race -short -run 'TestEndToEndChaos|TestCorruptSnapshotQuarantine' -count=1 ./internal/predsvc

# Storage/cluster gates: the store conformance suite against every Store
# implementation, and the in-process cluster digest test (scripts/cluster.sh
# is the real-binaries version of the latter).
echo "==> store conformance + cluster digest gate"
go test -race -short -run 'TestStoreConformance' -count=1 ./internal/predsvc/store
go test -race -short -run 'TestClusterReplayDigest|TestSpillBackedServer' -count=1 ./internal/predsvc

# The same property against the real binaries: 2 spill-backed predserverd
# nodes behind predload -cluster -batch must reproduce the single-node
# digest with disjoint per-node ownership.
echo "==> 2-node cluster smoke gate (real binaries)"
./scripts/cluster.sh

# Coverage ratchet: the short suite's statement coverage may drift, but
# never more than 2 points below the recorded baseline. When a PR raises
# coverage meaningfully, raise COVER_BASELINE to match `go tool cover
# -func` — the ratchet only ever moves up.
COVER_BASELINE=78.1
echo "==> coverage ratchet (baseline ${COVER_BASELINE}%, tolerance -2.0)"
cover_tmp=$(mktemp)
trap 'rm -f "$cover_tmp"' EXIT
go test -short -coverprofile="$cover_tmp" ./... >/dev/null
total=$(go tool cover -func="$cover_tmp" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
echo "    total statement coverage: ${total}%"
if ! awk -v t="$total" -v b="$COVER_BASELINE" 'BEGIN { exit !(t >= b - 2.0) }'; then
    echo "FAIL: coverage ${total}% is more than 2 points below the ${COVER_BASELINE}% baseline" >&2
    exit 1
fi

echo "OK"
