#!/bin/sh
# check.sh — the CI gate, runnable locally: formatting, vet, build, and the
# race-enabled short test suite. Slow multi-second campaign tests are
# guarded by testing.Short(); run `make test` (or `go test ./...`) for the
# full suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short ./...

# The short suite above already includes this, but run it by name so a
# test-filter or skip regression can't silently drop the end-to-end gate:
# real daemon on an ephemeral port, driven by the load generator.
echo "==> prediction-service end-to-end (short)"
go test -race -short -run 'TestEndToEnd' -count=1 ./internal/predsvc

echo "OK"
