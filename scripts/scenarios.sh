#!/bin/sh
# scenarios.sh — scenario-matrix acceptance gate against the real binaries.
#
# Collects the CC × link scenario matrix (reno/cubic/bbr senders over
# droptail/randomdrop/cellular/rwnd bottlenecks) twice at smoke scale with
# ronsim and asserts:
#
#   1. the two runs produce byte-identical datasets (digest equality —
#      the whole campaign, congestion controls included, is deterministic),
#   2. repro's ext-cc experiment runs on the dataset and emits the full
#      matrix and FB-degradation tables,
#   3. the paper-extending result holds even at smoke scale: FB's RMSRE
#      degrades under BBR senders (it encodes Reno's loss response), while
#      the history-based control group stays better on every BBR cell.
#
# Set SCEN_OUT=<dir> to keep the dataset + ext-cc output as CI artifacts.
set -eu

cd "$(dirname "$0")/.."

SEED="${SCEN_SEED:-7}"
TRACES=1
EPOCHS=6

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "==> building binaries"
go build -o "$tmp/ronsim" ./cmd/ronsim
go build -o "$tmp/repro" ./cmd/repro

# Uncompressed .json output: gzip framing could differ without the payload
# differing, and it is the payload determinism the gate pins.
echo "==> scenario matrix, run A (seed $SEED, $TRACES trace x $EPOCHS epochs per cell)"
"$tmp/ronsim" -scenarios -seed "$SEED" -traces "$TRACES" -epochs "$EPOCHS" \
    -progress off -out "$tmp/cc-a.json"
echo "==> scenario matrix, run B (same seed)"
"$tmp/ronsim" -scenarios -seed "$SEED" -traces "$TRACES" -epochs "$EPOCHS" \
    -progress off -out "$tmp/cc-b.json"

digest_of() { sha256sum "$1" | cut -d' ' -f1; }
dig_a=$(digest_of "$tmp/cc-a.json")
dig_b=$(digest_of "$tmp/cc-b.json")
echo "    run A sha256:$dig_a"
echo "    run B sha256:$dig_b"
if [ "$dig_a" != "$dig_b" ]; then
    echo "FAIL: scenario campaign is not reproducible across runs" >&2
    exit 1
fi

echo "==> repro -only ext-cc"
"$tmp/repro" -only ext-cc -cc "$tmp/cc-a.json" -progress off >"$tmp/ext-cc.txt"
grep -q "== ext-cc:" "$tmp/ext-cc.txt" || {
    echo "FAIL: ext-cc experiment did not run" >&2
    cat "$tmp/ext-cc.txt" >&2
    exit 1
}

# Matrix rows look like:
#   bbr/randomdrop 1 regression 0.07 0.08 0.09 0.08 3.07 0.07 0.07
# fields: scenario traces best MA EWMA HW switcher FB regression ECM.
# On every BBR cell the Reno-formula FB predictor ($8) must lose to the
# history-based moving average ($4), and all 12 cells must be present.
cells=$(awk '$1 ~ /^(reno|cubic|bbr)\// { n++ } END { print n+0 }' "$tmp/ext-cc.txt")
if [ "$cells" -ne 12 ]; then
    echo "FAIL: expected 12 scenario cells in the matrix, found $cells" >&2
    cat "$tmp/ext-cc.txt" >&2
    exit 1
fi
bad=$(awk '$1 ~ /^bbr\// && ($8 == "-" || $4 == "-" || $8 + 0 <= $4 + 0) { print $1 }' "$tmp/ext-cc.txt")
if [ -n "$bad" ]; then
    echo "FAIL: FB did not degrade past the 10-MA control on BBR cells: $bad" >&2
    cat "$tmp/ext-cc.txt" >&2
    exit 1
fi

# Degradation rows look like:
#   droptail 0.33 0.27 1.22 0.83x 3.70x
# At least half the links must show FB's bbr/reno error ratio above 1.5x.
degraded=$(awk '$6 ~ /x$/ { r = substr($6, 1, length($6) - 1) + 0; if (r >= 1.5) n++ } END { print n+0 }' "$tmp/ext-cc.txt")
echo "    links with FB bbr/reno >= 1.5x: $degraded/4"
if [ "$degraded" -lt 2 ]; then
    echo "FAIL: FB's BBR degradation not visible (want >= 2 links at 1.5x)" >&2
    cat "$tmp/ext-cc.txt" >&2
    exit 1
fi

if [ -n "${SCEN_OUT:-}" ]; then
    mkdir -p "$SCEN_OUT"
    cp "$tmp/ext-cc.txt" "$SCEN_OUT/ext-cc.txt"
    gzip -c "$tmp/cc-a.json" >"$SCEN_OUT/cc-seed$SEED.json.gz"
    echo "    artifacts in $SCEN_OUT/"
fi

echo "OK: scenario matrix reproducible; FB degrades on BBR, history holds"
