#!/bin/sh
# bench.sh — tracked benchmark runs. Runs the substrate micro-benches and
# the campaign macro-benches N times, distills the output into
# BENCH_<pr>.json (best ns/op, B/op, allocs/op per benchmark), and compares
# against the most recent committed BENCH_*.json, failing on a >25% ns/op
# regression in the gated hot-path benchmarks.
#
# Usage:
#   scripts/bench.sh           full run; writes BENCH_<next>.json
#   scripts/bench.sh -short    CI mode: micro + hot-path benches only, one
#                              pass, compare-only (nothing written)
#   scripts/bench.sh 7         full run; writes BENCH_7.json
#
# See DESIGN.md §10 for how to read the JSON.
set -eu

cd "$(dirname "$0")/.."

GATE='BenchmarkEngineEvents,BenchmarkTCPTransfer,BenchmarkCUBICTransfer,BenchmarkBBRTransfer,BenchmarkHWLSOObserve,BenchmarkRegressionObserve,BenchmarkECMObserve,BenchmarkWireObserveDecode,BenchmarkWireObserveEncode,BenchmarkWirePredictEncode'
MAX_REGRESS=25
# The wire codec benches and the per-ACK congestion-control hot path must
# stay allocation-free: zero allocs/op is their contract, enforced
# absolutely (not as a percentage).
ZERO_ALLOC='BenchmarkCUBICTransfer,BenchmarkBBRTransfer,BenchmarkWireObserveDecode,BenchmarkWireObserveEncode,BenchmarkWirePredictEncode,BenchmarkWirePredictRoundTrip'
WIRE_BENCH='BenchmarkWireObserveDecode|BenchmarkJSONObserveDecode|BenchmarkWireObserveEncode|BenchmarkJSONObserveEncode|BenchmarkWirePredictEncode|BenchmarkJSONPredictEncode|BenchmarkWirePredictRoundTrip|BenchmarkWireObserveHandler|BenchmarkOracleObserveHandler'

short=0
pr=""
for arg in "$@"; do
    case "$arg" in
    -short) short=1 ;;
    *) pr="$arg" ;;
    esac
done

# The latest committed BENCH_*.json is the comparison baseline. Plain
# glob + numeric max: no ls/sort pipeline, so a repo with zero baselines
# (or a shell where the failed glob aborts under set -e) degrades to an
# explicit warning below instead of a silent nonzero exit.
latest=""
latest_n=-1
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n=${f#BENCH_}
    n=${n%.json}
    case "$n" in
    '' | *[!0-9]*) continue ;;
    esac
    if [ "$n" -gt "$latest_n" ]; then
        latest_n=$n
        latest=$f
    fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ "$short" = 1 ]; then
    # CI mode: the hot-path benches only (the figure benches need a multi-
    # second dataset collection), one pass, reduced benchtime.
    echo "==> go test -bench (short)"
    go test -bench 'BenchmarkEngineEvents|BenchmarkEngineSchedCancel|BenchmarkPacketPath|BenchmarkQueueForwarding|BenchmarkTCPTransfer|BenchmarkCUBICTransfer|BenchmarkBBRTransfer|BenchmarkHWLSOObserve|BenchmarkPFTK|BenchmarkRegressionObserve|BenchmarkECMObserve' \
        -benchmem -benchtime 0.3s -run '^$' -count 1 . | tee "$tmp/bench.txt"
    echo "==> go test -bench wire codec (short)"
    go test -bench "$WIRE_BENCH" \
        -benchmem -benchtime 0.3s -run '^$' -count 1 ./internal/predsvc | tee -a "$tmp/bench.txt"
    go run ./cmd/benchjson parse -label short <"$tmp/bench.txt" >"$tmp/new.json"
    if [ -n "$latest" ]; then
        echo "==> compare vs $latest (gate: >$MAX_REGRESS% on $GATE; 0 allocs on $ZERO_ALLOC)"
        go run ./cmd/benchjson compare -old "$latest" -new "$tmp/new.json" \
            -gate "$GATE" -max-regress "$MAX_REGRESS" -zero-alloc "$ZERO_ALLOC"
    else
        echo "WARNING: no committed BENCH_*.json baseline found; skipping the regression gate." >&2
        echo "         Run 'scripts/bench.sh' on a healthy tree and commit the BENCH_<n>.json it writes." >&2
    fi
    echo "OK"
    exit 0
fi

# Full run: everything, three passes (benchjson keeps the best of each).
if [ -z "$pr" ]; then
    if [ -n "$latest" ]; then
        pr=$(( $(echo "$latest" | sed 's/BENCH_\([0-9]*\).json/\1/') + 1 ))
    else
        pr=1
    fi
fi
out="BENCH_${pr}.json"

echo "==> go test -bench . -count 3 (writes $out)"
go test -bench . -benchmem -run '^$' -count 3 . | tee "$tmp/bench.txt"
echo "==> go test -bench wire codec -count 3"
go test -bench "$WIRE_BENCH" \
    -benchmem -run '^$' -count 3 ./internal/predsvc | tee -a "$tmp/bench.txt"

if [ -n "$latest" ] && [ "$latest" != "$out" ]; then
    # Embed the previous tree's numbers so the file carries before/after.
    go run ./cmd/benchjson parse -label "pr$pr" <"$tmp/bench.txt" >"$tmp/new.json"
    echo "==> compare vs $latest (gate: >$MAX_REGRESS% on $GATE; 0 allocs on $ZERO_ALLOC)"
    go run ./cmd/benchjson compare -old "$latest" -new "$tmp/new.json" \
        -gate "$GATE" -max-regress "$MAX_REGRESS" -zero-alloc "$ZERO_ALLOC"
    cp "$tmp/new.json" "$out"
else
    go run ./cmd/benchjson parse -label "pr$pr" <"$tmp/bench.txt" >"$out"
fi
echo "wrote $out"
