#!/bin/sh
# chaos.sh — chaos-mode acceptance gate against the real binaries.
#
# Boots predserverd twice on a fixed port with periodic snapshots — once
# clean, once with -chaos (injected snapshot-write failures + in-handler
# panics) while predload also runs with -chaos (aborted predicts,
# slowloris probes, forced-panic probes) against an aggressive
# -max-inflight cap — and asserts:
#
#   1. both runs complete with zero fault-free request errors,
#   2. the predict digests are identical (chaos must not leak into state),
#   3. the daemon recovered at least one panic and reported it,
#   4. the daemon shuts down cleanly on SIGTERM after all that.
set -eu

cd "$(dirname "$0")/.."

PORT="${CHAOS_PORT:-18355}"
ADDR="127.0.0.1:$PORT"
SEED=7
PATHS=40
EPOCHS=60

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "==> building binaries"
go build -o "$tmp/predserverd" ./cmd/predserverd
go build -o "$tmp/predload" ./cmd/predload

# wait_ready polls /v1/stats until the daemon answers.
wait_ready() {
    i=0
    while [ $i -lt 100 ]; do
        if "$tmp/predload" -addr "$ADDR" -paths 1 -epochs 1 -workers 1 >/dev/null 2>&1; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "daemon on $ADDR never became ready" >&2
    return 1
}

# run_once <label> <daemon flags...> — boots the daemon, replays, SIGTERMs.
# predload output lands in $tmp/<label>.out, daemon log in $tmp/<label>.log.
run_once() {
    label=$1
    shift
    "$tmp/predserverd" -addr "$ADDR" \
        -snapshot "$tmp/$label-snap.json" -snapshot-interval 1s \
        "$@" >"$tmp/$label.log" 2>&1 &
    daemon_pid=$!
    wait_ready
    if [ "$label" = chaos ]; then
        "$tmp/predload" -addr "$ADDR" -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" \
            -chaos -chaos-seed "$SEED" >"$tmp/$label.out" 2>&1
    else
        "$tmp/predload" -addr "$ADDR" -seed "$SEED" -paths "$PATHS" -epochs "$EPOCHS" \
            >"$tmp/$label.out" 2>&1
    fi
    kill -TERM "$daemon_pid"
    wait "$daemon_pid" || { echo "daemon ($label) did not exit cleanly" >&2; cat "$tmp/$label.log" >&2; exit 1; }
    daemon_pid=""
    grep -q "shut down cleanly" "$tmp/$label.log" || {
        echo "daemon ($label) missing clean-shutdown marker" >&2
        cat "$tmp/$label.log" >&2
        exit 1
    }
}

echo "==> baseline run (no chaos)"
run_once baseline

echo "==> chaos run (daemon + client fault injection)"
run_once chaos -chaos -chaos-seed "$SEED" -max-inflight 2 -read-header-timeout 500ms \
    -snapshot-interval 200ms

digest_of() { grep -o 'digest sha256:[0-9a-f]*' "$1" | head -n1; }
base_digest=$(digest_of "$tmp/baseline.out")
chaos_digest=$(digest_of "$tmp/chaos.out")
[ -n "$base_digest" ] || { echo "no digest in baseline output" >&2; cat "$tmp/baseline.out" >&2; exit 1; }

echo "    baseline $base_digest"
echo "    chaos    $chaos_digest"
if [ "$base_digest" != "$chaos_digest" ]; then
    echo "FAIL: chaos run changed the predict digest" >&2
    exit 1
fi

panics=$(sed -n 's/.*panics_recovered=\([0-9]*\).*/\1/p' "$tmp/chaos.out" | head -n1)
if [ -z "$panics" ] || [ "$panics" -lt 1 ]; then
    echo "FAIL: expected panics_recovered >= 1, got '${panics:-none}'" >&2
    cat "$tmp/chaos.out" >&2
    exit 1
fi
echo "    panics recovered: $panics"

shed=$(sed -n 's/.*requests_shed=\([0-9]*\).*/\1/p' "$tmp/chaos.out" | head -n1)
if [ -z "$shed" ] || [ "$shed" -lt 1 ]; then
    echo "FAIL: expected requests_shed >= 1 with -max-inflight 2, got '${shed:-none}'" >&2
    cat "$tmp/chaos.out" >&2
    exit 1
fi
echo "    requests shed: $shed"
grep 'chaos: server' "$tmp/chaos.out" || true

echo "OK: daemon absorbed injected faults with an unchanged digest"
