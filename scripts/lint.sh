#!/bin/sh
# lint.sh — the static-analysis half of the CI lint job, runnable locally:
# gofmt, go vet, and (when installed) staticcheck + govulncheck. The tools
# are not vendored; CI installs them with `go install`, and locally the
# script skips what's missing with a note rather than failing, so `make
# lint` works on an offline checkout.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "==> govulncheck"
    govulncheck ./...
else
    echo "==> govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "OK"
