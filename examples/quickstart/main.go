// Quickstart: measure a simulated path, predict the throughput of a bulk
// TCP transfer with both predictor families, run the transfer, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	tcppred "repro"
	"repro/internal/stats"
)

func main() {
	// A 10 Mbps bottleneck path with 60 ms RTT carrying 40% cross traffic.
	spec := tcppred.PathSpec{
		Name: "quickstart",
		Forward: []tcppred.Hop{
			{CapacityBps: 50e6, PropDelay: 0.0075, BufferBytes: 4 << 20},
			{CapacityBps: 10e6, PropDelay: 0.015, BufferBytes: 96 * 1500},
			{CapacityBps: 50e6, PropDelay: 0.0075, BufferBytes: 4 << 20},
		},
	}
	path := tcppred.NewTestbedPath(spec, 0.4, 1)
	fmt.Println(path)

	// 1. Measure the path the way the paper does before each transfer:
	//    pathload-style avail-bw estimate plus periodic ping.
	m := path.Measure(30)
	fmt.Printf("measured: T̂ = %.1f ms, p̂ = %.4f, Â = %.2f Mbps\n",
		m.RTT*1e3, m.LossRate, m.AvailBw/1e6)

	// 2. Formula-based prediction (paper Eq. 3).
	fb := tcppred.NewFBPredictor(tcppred.FBConfig{Model: tcppred.PFTK})
	fbPred := fb.Predict(m.FBInputs())
	fmt.Printf("FB prediction: %.2f Mbps\n", fbPred/1e6)

	// 3. History-based prediction with the paper's best performer,
	//    Holt-Winters wrapped with the LSO heuristics, warmed up on a few
	//    previous transfers.
	hb := tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2))
	fmt.Println("warming HB predictor with 5 previous transfers...")
	for i := 0; i < 5; i++ {
		r := path.Transfer(20, 1<<20)
		hb.Observe(r)
		path.Wait(10)
	}
	hbPred, _ := hb.Predict()
	fmt.Printf("HB prediction: %.2f Mbps\n", hbPred/1e6)

	// 4. The actual transfer.
	actual := path.Transfer(30, 1<<20)
	fmt.Printf("actual throughput: %.2f Mbps\n", actual/1e6)
	fmt.Printf("relative errors (paper Eq. 4): FB %+.2f, HB %+.2f\n",
		stats.RelativeError(fbPred, actual), stats.RelativeError(hbPred, actual))
}
