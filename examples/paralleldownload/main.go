// Parallel download peer selection: a peer-to-peer client wants to fetch a
// large file from k of n mirrors. Before each fetch it predicts every
// mirror's TCP throughput from its transfer history (HB with LSO, the
// paper's recommendation when history exists) and downloads from the top-k.
// The example compares the achieved aggregate against random selection and
// against a full-knowledge oracle.
//
//	go run ./examples/paralleldownload
package main

import (
	"fmt"
	"math/rand"
	"sort"

	tcppred "repro"
)

type mirror struct {
	name string
	path *tcppred.Path
	hb   tcppred.HBPredictor
}

func main() {
	specs := []struct {
		name         string
		capMbps, rtt float64
		load         float64
	}{
		{"mirror-campus", 50, 0.02, 0.15},
		{"mirror-isp", 12, 0.05, 0.45},
		{"mirror-dsl", 1.2, 0.04, 0.30},
		{"mirror-eu", 20, 0.12, 0.25},
		{"mirror-asia", 10, 0.21, 0.10},
		{"mirror-congested", 30, 0.04, 0.85},
	}
	mirrors := make([]*mirror, len(specs))
	for i, s := range specs {
		capBps := s.capMbps * 1e6
		buf := int(capBps * s.rtt / 8)
		if buf < 32*1500 {
			buf = 32 * 1500
		}
		mirrors[i] = &mirror{
			name: s.name,
			path: tcppred.NewTestbedPath(tcppred.PathSpec{
				Name: s.name,
				Forward: []tcppred.Hop{
					{CapacityBps: capBps * 4, PropDelay: s.rtt / 8, BufferBytes: 4 << 20},
					{CapacityBps: capBps, PropDelay: s.rtt / 4, BufferBytes: buf},
					{CapacityBps: capBps * 4, PropDelay: s.rtt / 8, BufferBytes: 4 << 20},
				},
			}, s.load, int64(100+i)),
			hb: tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2)),
		}
	}

	const k = 2
	const rounds = 10
	rng := rand.New(rand.NewSource(1))
	var hbTotal, randTotal, oracleTotal float64

	for round := 0; round < rounds; round++ {
		// Measure every mirror by performing this round's "chunk fetch"
		// (10 s) — history accrues whichever selection strategy is used;
		// here every mirror is exercised so the three strategies can be
		// compared on identical outcomes.
		actual := make([]float64, len(mirrors))
		for i, m := range mirrors {
			actual[i] = m.path.Transfer(10, 256*1024)
		}

		// HB selection: top-k by predicted throughput (falls back to
		// round-robin while warming up).
		type scored struct {
			idx  int
			pred float64
			ok   bool
		}
		preds := make([]scored, len(mirrors))
		for i, m := range mirrors {
			p, ok := m.hb.Predict()
			preds[i] = scored{i, p, ok}
		}
		sort.Slice(preds, func(a, b int) bool { return preds[a].pred > preds[b].pred })
		var hbSum float64
		for _, s := range preds[:k] {
			hbSum += actual[s.idx]
		}

		// Random selection.
		perm := rng.Perm(len(mirrors))
		var randSum float64
		for _, idx := range perm[:k] {
			randSum += actual[idx]
		}

		// Oracle: the true top-k this round.
		sorted := append([]float64(nil), actual...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		oracleSum := sorted[0] + sorted[1]

		hbTotal += hbSum
		randTotal += randSum
		oracleTotal += oracleSum

		for i, m := range mirrors {
			m.hb.Observe(actual[i])
			m.path.Wait(5)
		}
		fmt.Printf("round %2d: HB picked %.2f Mbps, random %.2f, oracle %.2f\n",
			round, hbSum/1e6, randSum/1e6, oracleSum/1e6)
	}

	fmt.Printf("\naggregate over %d rounds (downloading from %d of %d mirrors):\n", rounds, k, len(mirrors))
	fmt.Printf("  HB-LSO selection: %6.2f Mbps (%.0f%% of oracle)\n", hbTotal/rounds/1e6, 100*hbTotal/oracleTotal)
	fmt.Printf("  random selection: %6.2f Mbps (%.0f%% of oracle)\n", randTotal/rounds/1e6, 100*randTotal/oracleTotal)
	fmt.Printf("  oracle:           %6.2f Mbps\n", oracleTotal/rounds/1e6)
}
