// Overlay routing: the motivating application of the paper's FB analysis.
// A RON-style overlay must pick the path with the best TCP throughput for
// a bulk transfer. This example builds three candidate paths with different
// capacity/RTT/load trade-offs, ranks them with (a) the FB predictor,
// (b) an HB predictor fed by past transfers, and (c) the actual transfer
// outcomes, and reports how often each method picks the true best path.
//
//	go run ./examples/overlayrouting
package main

import (
	"fmt"

	tcppred "repro"
)

type candidate struct {
	name string
	path *tcppred.Path
	hb   tcppred.HBPredictor
}

func mkPath(name string, capMbps, rttMs, load float64, seed int64) candidate {
	capBps := capMbps * 1e6
	rtt := rttMs / 1e3
	buf := int(capBps * rtt / 8)
	if buf < 32*1500 {
		buf = 32 * 1500
	}
	spec := tcppred.PathSpec{
		Name: name,
		Forward: []tcppred.Hop{
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: rtt / 4, BufferBytes: buf},
			{CapacityBps: capBps * 5, PropDelay: rtt / 8, BufferBytes: 4 << 20},
		},
	}
	return candidate{
		name: name,
		path: tcppred.NewTestbedPath(spec, load, seed),
		hb:   tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2)),
	}
}

func main() {
	// Direct path: fast but congested. Overlay A: slower link, lightly
	// loaded. Overlay B: long RTT transatlantic detour, idle.
	cands := []candidate{
		mkPath("direct (20 Mbps, 40 ms, 75% load)", 20, 40, 0.75, 11),
		mkPath("overlay-A (8 Mbps, 55 ms, 20% load)", 8, 55, 0.20, 22),
		mkPath("overlay-B (15 Mbps, 130 ms, 5% load)", 15, 130, 0.05, 33),
	}
	fb := tcppred.NewFBPredictor(tcppred.FBConfig{Model: tcppred.PFTK})

	const rounds = 8
	fbWins, hbWins := 0, 0
	hbReady := false
	for round := 0; round < rounds; round++ {
		type outcome struct {
			fbPred, hbPred, actual float64
			hbOK                   bool
		}
		results := make([]outcome, len(cands))
		for i, c := range cands {
			m := c.path.Measure(20)
			results[i].fbPred = fb.Predict(m.FBInputs())
			results[i].hbPred, results[i].hbOK = c.hb.Predict()
			results[i].actual = c.path.Transfer(20, 1<<20)
			c.hb.Observe(results[i].actual)
			c.path.Wait(15)
		}
		best := argmax(results, func(o outcome) float64 { return o.actual })
		fbPick := argmax(results, func(o outcome) float64 { return o.fbPred })
		hbPick := argmax(results, func(o outcome) float64 { return o.hbPred })
		if fbPick == best {
			fbWins++
		}
		allHB := true
		for _, r := range results {
			allHB = allHB && r.hbOK
		}
		if allHB {
			hbReady = true
			if hbPick == best {
				hbWins++
			}
		}
		fmt.Printf("round %d: best=%-40s FB picked %-40s HB picked %s\n",
			round, cands[best].name, cands[fbPick].name, hbName(cands, hbPick, allHB))
	}
	fmt.Printf("\nFB picked the best path %d/%d rounds\n", fbWins, rounds)
	if hbReady {
		fmt.Printf("HB picked the best path %d/%d rounds (after warm-up)\n", hbWins, rounds-1)
	}
	fmt.Println("\nThe paper's conclusion in action: with a transfer history, HB route")
	fmt.Println("selection is the more reliable ranking signal; FB works without any")
	fmt.Println("history but mispredicts on congested paths.")
}

func hbName(cands []candidate, pick int, ok bool) string {
	if !ok {
		return "(warming up)"
	}
	return cands[pick].name
}

func argmax[T any](xs []T, f func(T) float64) int {
	best, bestV := 0, f(xs[0])
	for i := 1; i < len(xs); i++ {
		if v := f(xs[i]); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
