// Campaign runner: collect a small measurement campaign through the public
// facade, with live progress, a deadline, and graceful partial results —
// the workflow an application would use to build its own prediction
// dataset instead of replaying the paper's.
//
// The example runs the same tiny campaign twice: first to completion with
// a progress bar, then under a deliberately short deadline to show that a
// cancelled campaign still yields every trace that finished before the
// cutoff.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	tcppred "repro"
)

func tinyCampaign(seed int64) tcppred.RunConfig {
	cfg := tcppred.DefaultCampaign(seed)
	// Shrink the default 12x2x40 campaign so the example runs in seconds.
	cfg.Catalog.NumPaths = 4
	cfg.Catalog.NumDSL = 1
	cfg.Catalog.NumTrans = 1
	cfg.TracesPerPath = 1
	cfg.EpochsPerTrace = 6
	cfg.PingDuration = 10
	cfg.TransferSec = 8
	cfg.EpochGap = 2
	cfg.SmallTransferSec = 0
	cfg.SmallWindowBytes = 0
	return cfg
}

func main() {
	// Run 1: full campaign with a live progress bar on stderr.
	cfg := tinyCampaign(42)
	cfg.Observer = tcppred.NewProgressObserver(os.Stderr)
	ds, err := tcppred.CollectDataset(context.Background(), cfg)
	if err != nil {
		fmt.Println("campaign error:", err)
		return
	}
	fmt.Printf("full run: %d traces, %d epochs\n", len(ds.Traces), ds.Epochs())
	for _, tr := range ds.Traces {
		mean := 0.0
		for _, r := range tr.Records {
			mean += r.Throughput
		}
		mean /= float64(len(tr.Records))
		fmt.Printf("  %-22s mean throughput %6.2f Mbps over %d epochs\n",
			tr.Path, mean/1e6, len(tr.Records))
	}

	// Run 2: same campaign under a deadline too short to finish. The
	// runner aborts at epoch boundaries and returns whatever completed.
	cfg = tinyCampaign(42)
	cfg.Parallelism = 1 // serial, so the cutoff lands mid-campaign
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	partial, err := tcppred.CollectDataset(ctx, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("expected a deadline error, got:", err)
		return
	}
	fmt.Printf("deadline run: kept %d of %d traces (%v)\n",
		len(partial.Traces), len(ds.Traces), err)
}
