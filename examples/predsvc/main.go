// Serving example: run the prediction service in-process, feed it a
// simulated path's measurement loop over HTTP — exactly what an overlay
// router or replica selector would do — and watch the service converge on
// the best predictor for the path.
//
//	go run ./examples/predsvc
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	tcppred "repro"
)

func main() {
	// Start the prediction server on an ephemeral port, shut it down
	// gracefully at the end by cancelling the context.
	srv := tcppred.NewPredictionServer(tcppred.ServiceConfig{Capacity: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("prediction service on", base)

	// A 10 Mbps path with 35% cross traffic stands in for a real route.
	spec := tcppred.PathSpec{
		Name: "svc-demo",
		Forward: []tcppred.Hop{
			{CapacityBps: 50e6, PropDelay: 0.005, BufferBytes: 4 << 20},
			{CapacityBps: 10e6, PropDelay: 0.02, BufferBytes: 96 * 1500},
		},
	}
	path := tcppred.NewTestbedPath(spec, 0.35, 42)

	// The serving loop of the paper's Fig. 1, over HTTP: measure → ask the
	// service → transfer → report back.
	for epoch := 0; epoch < 8; epoch++ {
		m := path.Measure(5)
		post(base+"/v1/measure", map[string]any{
			"path": "svc-demo", "rtt_s": m.RTT, "loss_rate": m.LossRate, "avail_bw_bps": m.AvailBw,
		})

		var pred tcppred.Prediction
		if epoch > 0 {
			get(base+"/v1/predict?path=svc-demo", &pred)
		}

		actual := path.Transfer(8, 1<<20)
		post(base+"/v1/observe", map[string]any{
			"path": "svc-demo", "throughput_bps": actual,
		})

		if pred.Best != "" {
			fmt.Printf("epoch %d: best=%s forecast %.2f Mbps, actual %.2f Mbps\n",
				epoch, pred.Best, pred.BestForecastBps/1e6, actual/1e6)
		} else {
			fmt.Printf("epoch %d: warming up, actual %.2f Mbps\n", epoch, actual/1e6)
		}
		path.Wait(5)
	}

	// Ask once more with full history, then shut down.
	var final tcppred.Prediction
	get(base+"/v1/predict?path=svc-demo", &final)
	fmt.Printf("final: best=%s (rolling RMSRE per predictor:", final.Best)
	for _, st := range final.HB {
		fmt.Printf(" %s=%.3f", st.Name, st.RMSRE)
	}
	if final.FB != nil {
		fmt.Printf(" FB=%.3f", final.FB.RMSRE)
	}
	fmt.Println(")")

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

func post(url string, body map[string]any) {
	data, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
