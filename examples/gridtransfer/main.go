// Grid bulk transfers: a compute site replicates datasets over the same
// path a few times per hour — exactly the sporadic-history regime of the
// paper's §6.1.6. The example runs sporadic transfers at increasing
// intervals and shows how HB prediction accuracy degrades gracefully, and
// how the window-limited variant (§4.2.8) trades throughput for
// predictability — relevant when the grid scheduler needs reliable
// completion-time estimates.
//
//	go run ./examples/gridtransfer
package main

import (
	"fmt"

	tcppred "repro"
	"repro/internal/stats"
)

func run(interval float64, window int, seed int64) (meanTput, rmsre float64) {
	capBps := 16e6
	rtt := 0.07
	spec := tcppred.PathSpec{
		Name: "grid",
		Forward: []tcppred.Hop{
			{CapacityBps: capBps * 4, PropDelay: rtt / 8, BufferBytes: 4 << 20},
			{CapacityBps: capBps, PropDelay: rtt / 4, BufferBytes: 128 * 1500},
			{CapacityBps: capBps * 4, PropDelay: rtt / 8, BufferBytes: 4 << 20},
		},
	}
	path := tcppred.NewTestbedPath(spec, 0.5, seed)
	hb := tcppred.WithLSO(tcppred.NewHoltWinters(0.8, 0.2))

	var errs []float64
	var sum float64
	const transfers = 14
	for i := 0; i < transfers; i++ {
		pred, ok := hb.Predict()
		actual := path.Transfer(20, window)
		sum += actual
		if ok {
			errs = append(errs, stats.RelativeError(pred, actual))
		}
		hb.Observe(actual)
		path.Wait(interval)
	}
	return sum / transfers, stats.RMSRE(errs, 50)
}

func main() {
	fmt.Println("HB prediction accuracy vs transfer interval (paper §6.1.6):")
	fmt.Printf("%-12s %-16s %s\n", "interval", "mean throughput", "RMSRE")
	for _, interval := range []float64{60, 360, 1440, 2700} {
		tput, rmsre := run(interval, 1<<20, 7)
		fmt.Printf("%4.0f min     %6.2f Mbps      %.3f\n", interval/60, tput/1e6, rmsre)
	}

	fmt.Println("\nwindow-limited vs congestion-limited at a 6-minute interval (§4.2.8):")
	fmt.Printf("%-14s %-16s %s\n", "window", "mean throughput", "RMSRE")
	for _, w := range []int{20 * 1024, 1 << 20} {
		tput, rmsre := run(360, w, 7)
		label := fmt.Sprintf("%d KB", w/1024)
		if w >= 1<<20 {
			label = "1 MB"
		}
		fmt.Printf("%-14s %6.2f Mbps      %.3f\n", label, tput/1e6, rmsre)
	}
	fmt.Println("\nThe 20 KB-window transfers are slower but far more predictable —")
	fmt.Println("the trade the paper recommends for applications that value")
	fmt.Println("predictability over raw throughput.")
}
